"""Overload campaigns: drive every platform past saturation, openly.

The paper's closed-loop protocol never saturates either platform; an
overload campaign does it on purpose.  It reuses the open-loop arrival
models of :mod:`repro.core.arrivals` to offer load at a fixed rate past
the platforms' service capacity and reports what each overload-protection
layer did with the excess:

* AWS rejects at admission — token-bucket/concurrency 429s that Step
  Functions absorbs with capped, jittered backoff until attempts run out;
* Azure pushes back at the queues — a bounded dispatch queue answering
  HTTP 429 at the trigger, plus deadline-based load shedding of accepted
  work that waited too long;
* GCP rejects at the instance cap — gen1's one-request-per-instance
  model 429s the excess, and Workflows retries with capped exponential
  backoff.

Per-platform throttle/retry counters come from the platform's
:class:`~repro.platforms.backend.PlatformBackend`, so a new backend
plugs into overload reporting without touching this module.

Every request therefore ends in exactly one of four buckets — succeeded,
throttled, shed, failed — and the :class:`OverloadSummary` reports
goodput, throttle/shed rates, retry amplification and tail latency per
swept rate.  Like every campaign type, the result is a pure function of
the :class:`~repro.core.parallel.CampaignSpec`, bit-identical across the
serial runner, :class:`~repro.core.parallel.ParallelRunner` workers and
cache replay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from repro.core.costs import cost_report
from repro.core.experiment import CampaignResult
from repro.core.metrics import percentile
from repro.core.testbed import Testbed
from repro.platforms.backend import get_backend
from repro.platforms.base import LoadShedError, ThrottlingError

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.core.parallel import CampaignOutcome, CampaignSpec

#: Arrival-process kinds an overload spec may name.
ARRIVAL_KINDS = ("poisson", "uniform", "bursty")

#: Burst shape used by ``arrival="bursty"`` when the spec's ``batch``
#: field is left at 0.
DEFAULT_BURST_SIZE = 10
BURSTS_PER_HOUR = 30.0

#: Error-message markers for classifying failures that crossed a
#: workflow boundary (e.g. an AWS-Step execution that FAILED with
#: ``Lambda.TooManyRequestsException`` surfaces as a RuntimeError).
_THROTTLE_MARKERS = ("TooManyRequests", "Throttling", "429",
                     "depth bound", "token bucket")
_SHED_MARKERS = ("shed after waiting",)


def classify_error(error: BaseException) -> str:
    """Which bucket a failed request lands in: throttled, shed or failed.

    Typed exceptions win; otherwise the error text is matched so that
    rejections wrapped by workflow layers (Step Functions FAILED records,
    orchestration failures) still land in the right bucket.
    """
    if isinstance(error, LoadShedError):
        return "shed"
    if isinstance(error, ThrottlingError):
        return "throttled"
    text = str(error)
    if any(marker in text for marker in _THROTTLE_MARKERS):
        return "throttled"
    if any(marker in text for marker in _SHED_MARKERS):
        return "shed"
    return "failed"


@dataclass(frozen=True)
class OverloadSummary:
    """What one deployment did with one offered arrival rate."""

    deployment: str
    platform: str
    rate_per_s: float
    horizon_s: float
    #: scheduled arrivals over the horizon
    offered: int
    succeeded: int
    #: requests ultimately rejected 429 (admission or exhausted backoff)
    throttled: int
    #: accepted requests dropped past their queue-wait budget
    shed: int
    #: requests that errored for any non-overload reason
    failed: int
    #: platform-level 429 events, including ones retries absorbed
    throttle_events: int
    #: invocation re-attempts the platform performed absorbing 429s
    retries: int
    goodput_per_s: float
    throttle_rate: float
    shed_rate: float
    failure_rate: float
    #: total attempts per offered request (1.0 = no retry traffic)
    retry_amplification: float
    p50_latency_s: float
    p99_latency_s: float

    @property
    def success_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.succeeded / self.offered

    @property
    def delivered_fraction(self) -> float:
        """Goodput as a fraction of the offered rate."""
        if self.rate_per_s <= 0:
            return 0.0
        return self.goodput_per_s / self.rate_per_s


def arrival_process(spec: "CampaignSpec") -> ArrivalProcess:
    """The arrival model an overload spec asks for."""
    rate = spec.arrival_rate_per_s
    if spec.arrival == "uniform":
        return UniformArrivals(rate_per_s=rate)
    if spec.arrival == "bursty":
        return BurstyArrivals(rate_per_s=rate,
                              burst_size=spec.batch or DEFAULT_BURST_SIZE,
                              bursts_per_hour=BURSTS_PER_HOUR)
    return PoissonArrivals(rate_per_s=rate)


def _ratio(value: float, baseline: float) -> float:
    if baseline <= 0:
        return 0.0
    return value / baseline


def execute_overload_spec(spec: "CampaignSpec") -> "CampaignOutcome":
    """Run one open-loop overload pass and summarize the four buckets.

    Mirrors :class:`~repro.core.arrivals.LoadGenerator` but tolerates —
    indeed, measures — rejected work: a request raising is classified via
    :func:`classify_error` instead of aborting the campaign, so at any
    offered rate the run completes without an unhandled exception.
    """
    from repro.core import audit as audit_mod
    from repro.core.deployments.base import Deployment
    from repro.core.parallel import CampaignOutcome
    Deployment._run_ids = itertools.count(1)

    testbed = Testbed(seed=spec.seed, calibrations=spec.calibrations(),
                      fault_plan=spec.fault_plan_obj(),
                      audit=audit_mod.enabled_for(spec.audit))
    deployment = spec.build_deployment(testbed)
    deployment.deploy()
    auditor = testbed.auditor
    rng = testbed.streams.get(f"load.{deployment.name}")
    offsets = arrival_process(spec).schedule(rng, spec.horizon_s)
    kwargs = dict(spec.invoke_kwargs)
    campaign = CampaignResult(deployment=deployment.name)
    counts = {"throttled": 0, "shed": 0, "failed": 0}

    def fire(env, delay):
        yield env.timeout(delay)
        if auditor is not None:
            auditor.note_arrival()
        try:
            run = yield from deployment.invoke(**kwargs)
        except Exception as error:  # noqa: BLE001 - the bucket IS the datum
            counts[classify_error(error)] += 1
            if auditor is not None:
                auditor.note_outcome(classify_error(error))
            return None
        campaign.runs.append(run)
        if auditor is not None:
            auditor.note_outcome("succeeded")
        return run

    env = testbed.env
    processes = [env.process(fire(env, offset)) for offset in offsets]

    def driver(env):
        if processes:
            yield env.all_of(processes)

    env.run(until=env.process(driver(env)))
    campaign.runs.sort(key=lambda run: run.started_at)

    offered = len(offsets)
    succeeded = len(campaign.runs)
    backend = get_backend(deployment.platform)
    throttle_events = backend.throttle_count(testbed)
    retries = backend.retry_count(testbed)
    if testbed.faults is not None:
        retries += testbed.faults.platform_retries
    latencies = campaign.latencies

    summary = OverloadSummary(
        deployment=spec.deployment,
        platform=deployment.platform,
        rate_per_s=spec.arrival_rate_per_s,
        horizon_s=spec.horizon_s,
        offered=offered,
        succeeded=succeeded,
        throttled=counts["throttled"],
        shed=counts["shed"],
        failed=counts["failed"],
        throttle_events=throttle_events,
        retries=retries,
        goodput_per_s=_ratio(succeeded, spec.horizon_s),
        throttle_rate=_ratio(counts["throttled"], offered),
        shed_rate=_ratio(counts["shed"], offered),
        failure_rate=_ratio(counts["failed"], offered),
        retry_amplification=(1.0 if offered == 0
                             else (offered + retries) / offered),
        p50_latency_s=percentile(latencies, 50) if latencies else 0.0,
        p99_latency_s=percentile(latencies, 99) if latencies else 0.0)

    cost = cost_report(deployment, per_runs=max(1, offered))
    report = None
    if auditor is not None:
        report = auditor.finalize()
        if audit_mod.RAISE_ON_VIOLATION:
            report.raise_if_violations(spec=spec)
    return CampaignOutcome(spec=spec, campaign=campaign, cost=cost,
                           overload=summary, audit=report)
