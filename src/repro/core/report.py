"""Text renderers for the paper's tables and figures.

Benchmarks print these so a run of ``pytest benchmarks/ --benchmark-only``
reproduces every table and figure as readable console output, alongside
the qualitative assertions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """A fixed-width ASCII table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(str(header).ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(value.ljust(width)
                                for value, width in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def render_bars(data: Dict[str, float], title: str = "", unit: str = "",
                width: int = 50) -> str:
    """Horizontal ASCII bars, longest label-aligned (the paper's bar
    charts, e.g. Fig 6/9/10/11)."""
    if not data:
        raise ValueError("no data to render")
    label_width = max(len(label) for label in data)
    peak = max(abs(value) for value in data.values()) or 1.0
    lines = [title] if title else []
    for label, value in data.items():
        bar = "#" * max(1, int(round(width * abs(value) / peak)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:,.2f}{unit}")
    return "\n".join(lines)


def render_grouped_bars(groups: Dict[str, Dict[str, float]], title: str = "",
                        unit: str = "") -> str:
    """Bars grouped by an outer key (e.g. dataset scale)."""
    lines = [title] if title else []
    for group, data in groups.items():
        lines.append(f"-- {group}")
        lines.append(render_bars(data, unit=unit))
    return "\n".join(lines)


def render_cdf(series: Dict[str, List[Tuple[float, float]]],
               title: str = "", quantiles: Sequence[float] = (
                   0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99)) -> str:
    """A CDF as a quantile table (Fig 7 / Fig 14)."""
    headers = ["fraction"] + list(series)
    rows = []
    for target in quantiles:
        row: List[object] = [f"{target:.2f}"]
        for points in series.values():
            value = _value_at_fraction(points, target)
            row.append(value)
        rows.append(row)
    return render_table(headers, rows, title=title)


def _value_at_fraction(points: List[Tuple[float, float]],
                       target: float) -> float:
    for value, fraction in points:
        if fraction >= target:
            return value
    return points[-1][0]


def render_gantt(spans, since: float = 0.0, until: Optional[float] = None,
                 width: int = 72, max_rows: int = 40,
                 title: str = "") -> str:
    """An ASCII Gantt chart of telemetry spans — the debugging view.

    Each closed span becomes one row: a bar positioned on a common time
    axis, labelled ``kind:name``.  Useful for eyeballing where a workflow
    spent its time (cold starts, queueing, execution, replay).
    """
    closed = [span for span in spans if span.closed and span.start >= since
              and (until is None or span.start < until)]
    if not closed:
        raise ValueError("no closed spans in the window")
    closed.sort(key=lambda span: (span.start, span.span_id))
    closed = closed[:max_rows]
    t0 = min(span.start for span in closed)
    t1 = max(span.end for span in closed)
    span_of_axis = max(t1 - t0, 1e-9)
    label_width = max(len(f"{span.kind}:{span.name}") for span in closed)
    lines = [title] if title else []
    lines.append(f"{'':{label_width}}  {t0:.2f}s {'-' * (width - 16)} "
                 f"{t1:.2f}s")
    for span in closed:
        begin = int(width * (span.start - t0) / span_of_axis)
        length = max(1, int(width * span.duration / span_of_axis))
        bar = " " * begin + "#" * min(length, width - begin)
        label = f"{span.kind}:{span.name}"
        lines.append(f"{label:{label_width}}  |{bar.ljust(width)}| "
                     f"{span.duration:.2f}s")
    return "\n".join(lines)


_SPARK_LEVELS = " .:-=+*#%@"


def render_timeseries(points: Sequence[Tuple[float, float]],
                      title: str = "", unit: str = "",
                      width: int = 60) -> str:
    """A sparkline plus min/max annotations for a metric timeseries.

    ``points`` are (time, value) pairs, e.g. from
    :meth:`repro.telemetry.metrics.MetricSeries.percentile_per_period`.
    """
    if not points:
        raise ValueError("no points to render")
    values = [value for _, value in points]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    if len(values) > width:
        # Downsample by striding; sparklines don't need every point.
        stride = len(values) / width
        values = [values[int(index * stride)] for index in range(width)]
    marks = "".join(
        _SPARK_LEVELS[int((value - low) / span * (len(_SPARK_LEVELS) - 1))]
        for value in values)
    lines = [title] if title else []
    lines.append(f"[{marks}]")
    lines.append(f"min={low:,.2f}{unit}  max={high:,.2f}{unit}  "
                 f"n={len(points)}  t=[{points[0][0]:,.0f}s"
                 f"..{points[-1][0]:,.0f}s]")
    return "\n".join(lines)


def render_breakdown(data: Dict[str, Tuple[float, float]],
                     title: str = "") -> str:
    """Stacked queue/execution breakdown table (Fig 8 / Fig 13)."""
    headers = ["implementation", "queue time (s)", "execution time (s)",
               "total (s)"]
    rows = [[name, queue, execution, queue + execution]
            for name, (queue, execution) in data.items()]
    return render_table(headers, rows, title=title)
