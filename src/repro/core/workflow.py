"""Platform-neutral workflow IR: author once, deploy to either cloud.

The paper's core tenant problem (§I) is *choosing* between two
incompatible programming models: AWS's JSON state machines versus Azure's
code-first orchestrators.  This module answers the library-design
question that follows from the characterization: a small workflow graph —
tasks, sequences, parallel fan-outs, dynamic maps — that **compiles to
both**: an Amazon-States-Language definition for Step Functions and a
generator orchestrator for Durable Functions.

Semantics are aligned with the lowest common denominator the paper
evaluates:

* a *task* names a function deployed on the target platform and receives
  the current data document;
* a *sequence* threads the document through steps;
* a *parallel* block runs fixed branches and yields the list of branch
  outputs;
* a *map* fans out over a list produced by ``items_path`` in the document
  and yields the list of per-item outputs.

Example
-------
>>> from repro.core.workflow import Workflow, task, sequence
>>> wf = Workflow("etl", sequence(task("extract"), task("load")))
>>> definition = wf.to_asl()
>>> definition["StartAt"]
'etl-1-extract'
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.aws.jsonpath import get_path


# -- nodes -------------------------------------------------------------------------

class Node:
    """Base class for workflow graph nodes."""


@dataclass
class TaskNode(Node):
    """Invoke the platform function registered under ``function``."""

    function: str

    def __post_init__(self):
        if not self.function:
            raise ValueError("task needs a function name")


@dataclass
class SequenceNode(Node):
    """Run steps in order, threading the data document through."""

    steps: List[Node]

    def __post_init__(self):
        if not self.steps:
            raise ValueError("sequence needs at least one step")


@dataclass
class ParallelNode(Node):
    """Run fixed branches concurrently; output is the branch-output list."""

    branches: List[Node]

    def __post_init__(self):
        if not self.branches:
            raise ValueError("parallel needs at least one branch")


@dataclass
class MapNode(Node):
    """Fan out over the list at ``items_path``; output is the result list."""

    items_path: str
    iterator: Node
    max_concurrency: int = 0

    def __post_init__(self):
        if not self.items_path.startswith("$"):
            raise ValueError("items_path must be a reference path ($...)")
        if self.max_concurrency < 0:
            raise ValueError("max_concurrency must be non-negative")


def task(function: str) -> TaskNode:
    """Sugar for :class:`TaskNode`."""
    return TaskNode(function=function)


def sequence(*steps: Node) -> SequenceNode:
    """Sugar for :class:`SequenceNode`."""
    return SequenceNode(steps=list(steps))


def parallel(*branches: Node) -> ParallelNode:
    """Sugar for :class:`ParallelNode`."""
    return ParallelNode(branches=list(branches))


def map_over(items_path: str, iterator: Node,
             max_concurrency: int = 0) -> MapNode:
    """Sugar for :class:`MapNode`."""
    return MapNode(items_path=items_path, iterator=iterator,
                   max_concurrency=max_concurrency)


# -- the workflow --------------------------------------------------------------------

class Workflow:
    """A named, platform-neutral workflow graph."""

    def __init__(self, name: str, root: Node):
        if not name:
            raise ValueError("workflow needs a name")
        if not isinstance(root, Node):
            raise TypeError(f"root must be a workflow node, got {root!r}")
        self.name = name
        self.root = root

    def functions(self) -> List[str]:
        """All function names the workflow references (deduplicated)."""
        found: List[str] = []

        def visit(node: Node) -> None:
            if isinstance(node, TaskNode):
                if node.function not in found:
                    found.append(node.function)
            elif isinstance(node, SequenceNode):
                for step in node.steps:
                    visit(step)
            elif isinstance(node, ParallelNode):
                for branch in node.branches:
                    visit(branch)
            elif isinstance(node, MapNode):
                visit(node.iterator)

        visit(self.root)
        return found

    # -- AWS compilation -------------------------------------------------------------

    def to_asl(self) -> Dict[str, Any]:
        """Compile to an Amazon-States-Language definition."""
        counter = itertools.count()

        def state_name(label: str) -> str:
            return f"{self.name}-{next(counter)}-{label}"

        def compile_node(node: Node, next_state: Optional[str]
                         ) -> (str, Dict[str, Any]):
            """Compile ``node``; returns (entry_state, states_dict)."""
            terminal = {"End": True} if next_state is None else {
                "Next": next_state}
            if isinstance(node, TaskNode):
                name = state_name(node.function)
                return name, {name: {"Type": "Task",
                                     "Resource": node.function,
                                     **terminal}}
            if isinstance(node, SequenceNode):
                states: Dict[str, Any] = {}
                entry = next_state
                for step in reversed(node.steps):
                    entry, step_states = compile_node(step, entry)
                    states.update(step_states)
                return entry, states
            if isinstance(node, ParallelNode):
                name = state_name("parallel")
                branches = []
                for branch in node.branches:
                    entry, states = compile_node(branch, None)
                    branches.append({"StartAt": entry, "States": states})
                return name, {name: {"Type": "Parallel",
                                     "Branches": branches, **terminal}}
            if isinstance(node, MapNode):
                name = state_name("map")
                entry, states = compile_node(node.iterator, None)
                return name, {name: {
                    "Type": "Map", "ItemsPath": node.items_path,
                    "MaxConcurrency": node.max_concurrency,
                    "Iterator": {"StartAt": entry, "States": states},
                    **terminal}}
            raise TypeError(f"unknown node type: {type(node).__name__}")

        start_at, states = compile_node(self.root, None)
        return {"Comment": f"compiled from workflow {self.name!r}",
                "StartAt": start_at, "States": states}

    def deploy_aws(self, testbed, workflow_type: str = "standard") -> str:
        """Create the state machine on the testbed; returns its name.

        ``workflow_type`` selects Standard or Express semantics/pricing.
        """
        for function in self.functions():
            testbed.lambdas.get_function(function)   # fail fast
        testbed.stepfunctions.create_state_machine(
            self.name, self.to_asl(), workflow_type=workflow_type)
        return self.name

    # -- Azure compilation --------------------------------------------------------------

    def to_orchestrator(self) -> Callable[[Any], Generator]:
        """Compile to a deterministic Durable orchestrator generator."""
        root = self.root

        def run_node(context, node: Node, data: Any):
            if isinstance(node, TaskNode):
                result = yield context.call_activity(node.function, data)
                return result
            if isinstance(node, SequenceNode):
                for step in node.steps:
                    data = yield from run_node(context, step, data)
                return data
            if isinstance(node, ParallelNode):
                # Durable has no sub-graph parallelism primitive for
                # arbitrary branches; single-task branches fan out as one
                # task_all, nested branches run as sub-sequences in order
                # of scheduling (they still overlap via the task model
                # when each branch is a single activity).
                if all(isinstance(branch, TaskNode)
                       for branch in node.branches):
                    tasks = [context.call_activity(branch.function, data)
                             for branch in node.branches]
                    results = yield context.task_all(tasks)
                    return results
                results = []
                for branch in node.branches:
                    results.append((yield from run_node(
                        context, branch, data)))
                return results
            if isinstance(node, MapNode):
                items = get_path(data, node.items_path)
                if not isinstance(items, list):
                    raise TypeError(
                        f"items_path {node.items_path!r} did not "
                        "resolve to a list")
                if isinstance(node.iterator, TaskNode):
                    tasks = [context.call_activity(
                        node.iterator.function, item) for item in items]
                    results = yield context.task_all(tasks)
                    return results
                results = []
                for item in items:
                    results.append((yield from run_node(
                        context, node.iterator, item)))
                return results
            raise TypeError(f"unknown node type: {type(node).__name__}")

        def orchestrator(context):
            result = yield from run_node(context, root, context.input)
            return result

        orchestrator.__name__ = f"workflow_{self.name}"
        return orchestrator

    def deploy_azure(self, testbed, measured_memory_mb: int = 256) -> str:
        """Register the orchestrator on the testbed; returns its name."""
        from repro.azure import OrchestratorSpec
        for function in self.functions():
            testbed.app.get_function(function)   # fail fast
        testbed.durable.register_orchestrator(OrchestratorSpec(
            self.name, self.to_orchestrator(),
            measured_memory_mb=measured_memory_mb))
        return self.name

    # -- GCP compilation --------------------------------------------------------------

    def to_gcp_steps(self) -> List[Dict[str, Any]]:
        """Compile to a GCP Workflows step list.

        The graph threads its document through the ``data`` variable —
        the convention :mod:`repro.gcp.workflows` executes against: each
        task becomes a call step reading and rebinding ``data``, fixed
        branches become a parallel step, and a map becomes a parallel
        ``for`` over the list the items path selects out of ``data``.
        """
        counter = itertools.count()

        def step_name(label: str) -> str:
            return f"{self.name}-{next(counter)}-{label}"

        def compile_node(node: Node) -> List[Dict[str, Any]]:
            if isinstance(node, TaskNode):
                return [{"name": step_name(node.function),
                         "call": node.function, "args": "$.data",
                         "result": "data"}]
            if isinstance(node, SequenceNode):
                steps: List[Dict[str, Any]] = []
                for step in node.steps:
                    steps.extend(compile_node(step))
                return steps
            if isinstance(node, ParallelNode):
                return [{"name": step_name("parallel"),
                         "parallel": {
                             "branches": [compile_node(branch)
                                          for branch in node.branches],
                             "result": "data"}}]
            if isinstance(node, MapNode):
                # The items path addresses the document, which lives in
                # the 'data' variable: '$.items' -> '$.data.items'.
                items_ref = "$.data" + node.items_path[1:]
                return [{"name": step_name("map"),
                         "for": {"value": "item", "in": items_ref,
                                 "steps": compile_node(node.iterator),
                                 "concurrency": node.max_concurrency,
                                 "result": "data"}}]
            raise TypeError(f"unknown node type: {type(node).__name__}")

        steps = compile_node(self.root)
        steps.append({"name": step_name("done"), "return": "$.data"})
        return steps

    def deploy_gcp(self, testbed) -> str:
        """Create the workflow on the testbed; returns its name."""
        for function in self.functions():
            testbed.cloudfunctions.get_function(function)   # fail fast
        testbed.workflows.create_workflow(self.name, self.to_gcp_steps())
        return self.name

    def __repr__(self) -> str:
        return (f"Workflow(name={self.name!r}, "
                f"functions={self.functions()})")
