"""Unified cost reporting across all platforms (§IV-A Price Calculation).

"We measured two components of the price ...: computation cost, and
transaction cost."  This module reads a deployment's billing and
transaction meters and renders both components in dollars, plus the GB-s
and transaction counts behind them (Fig 11, Fig 15).  The per-platform
breakdown itself comes from the deployment's registered
:class:`~repro.platforms.backend.PlatformBackend`, so new platforms
report costs without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.deployments.base import Deployment
from repro.platforms.backend import get_backend


@dataclass(frozen=True)
class CostReport:
    """Cost of everything a deployment's meters have recorded."""

    deployment: str
    platform: str
    gb_s: float                 # raw compute volume (Fig 11a/11b)
    compute_cost: float         # GB-s × price + request/execution charges
    transaction_cost: float     # transitions (AWS), storage tx (Azure),
                                # or workflow steps (GCP)
    transaction_count: int
    replay_gb_s: float = 0.0    # orchestrator replay share (Azure only)

    @property
    def total(self) -> float:
        return self.compute_cost + self.transaction_cost

    @property
    def transaction_share(self) -> float:
        """Stateful share of the total (Fig 11c/11d, Fig 15)."""
        return self.transaction_cost / self.total if self.total else 0.0


def cost_report(deployment: Deployment,
                per_runs: Optional[int] = None) -> CostReport:
    """Read the deployment's platform meters into a :class:`CostReport`.

    With ``per_runs`` the dollar/GB-s quantities are divided by that run
    count, giving per-execution cost (the paper's per-run charts).
    """
    backend = get_backend(deployment.platform)
    breakdown = backend.cost_breakdown(deployment.testbed)
    report = CostReport(deployment=deployment.name,
                        platform=deployment.platform, **breakdown)
    if per_runs and per_runs > 0:
        report = CostReport(
            deployment=report.deployment, platform=report.platform,
            gb_s=report.gb_s / per_runs,
            compute_cost=report.compute_cost / per_runs,
            transaction_cost=report.transaction_cost / per_runs,
            transaction_count=report.transaction_count // per_runs,
            replay_gb_s=report.replay_gb_s / per_runs)
    return report


def monthly_projection(report: CostReport, runs_per_month: int,
                       idle_transactions_per_month: int = 0,
                       transaction_price: float = 4.0e-8) -> CostReport:
    """Project a per-run report to a monthly bill (Fig 15).

    Azure's constant queue polling bills ``idle_transactions_per_month``
    even when no workflow runs; AWS's idle term is zero.
    """
    idle_cost = idle_transactions_per_month * transaction_price
    return CostReport(
        deployment=report.deployment, platform=report.platform,
        gb_s=report.gb_s * runs_per_month,
        compute_cost=report.compute_cost * runs_per_month,
        transaction_cost=(report.transaction_cost * runs_per_month
                          + idle_cost),
        transaction_count=(report.transaction_count * runs_per_month
                           + idle_transactions_per_month),
        replay_gb_s=report.replay_gb_s * runs_per_month)
