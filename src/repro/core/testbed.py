"""The testbed: one simulated world holding both cloud platforms.

A :class:`Testbed` owns a single simulation environment plus, per
platform, a complete service stack (runtime, storage, telemetry, billing
and transaction meters).  Deployments register their functions into the
testbed; the experiment runner drives invocations and reads measurements
back out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.aws import AWSPriceModel, LambdaService, StepFunctionsService
from repro.azure import (
    AzurePriceModel,
    DurableFunctionsRuntime,
    FunctionAppService,
)
from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import (
    AWSCalibration,
    AzureCalibration,
    default_aws_calibration,
    default_azure_calibration,
)
from repro.sim import Environment, RandomStreams
from repro.storage import BlobStore, TransactionMeter
from repro.telemetry import Telemetry


@dataclass
class PlatformStack:
    """One platform's services and meters."""

    telemetry: Telemetry
    billing: BillingMeter
    meter: TransactionMeter
    blob: BlobStore

    def reset_meters(self) -> None:
        """Clear billing/transaction/telemetry state between campaigns."""
        self.telemetry.reset()
        self.billing.reset()
        self.meter.reset()


class Testbed:
    """A fresh simulated world with AWS and Azure stacks side by side."""

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(self, seed: int = 0,
                 aws_calibration: Optional[AWSCalibration] = None,
                 azure_calibration: Optional[AzureCalibration] = None):
        self.env = Environment()
        self.streams = RandomStreams(seed=seed)
        self.aws_calibration = aws_calibration or default_aws_calibration()
        self.azure_calibration = (azure_calibration
                                  or default_azure_calibration())

        clock = lambda: self.env.now  # noqa: E731 - tiny clock closure

        # -- AWS stack ----------------------------------------------------------
        aws_telemetry = Telemetry(clock)
        aws_billing = BillingMeter(clock)
        aws_meter = TransactionMeter(clock)
        aws_blob = BlobStore(self.env, aws_meter,
                             self.streams.get("aws.blob"), account="s3")
        self.aws = PlatformStack(aws_telemetry, aws_billing, aws_meter,
                                 aws_blob)
        self.lambdas = LambdaService(
            self.env, aws_telemetry, aws_billing, self.streams,
            calibration=self.aws_calibration,
            services={"blob": aws_blob})
        self.stepfunctions = StepFunctionsService(
            self.env, self.lambdas, aws_telemetry, aws_meter)
        self.aws_prices = AWSPriceModel(self.aws_calibration)

        # -- Azure stack ---------------------------------------------------------
        azure_telemetry = Telemetry(clock)
        azure_billing = BillingMeter(clock)
        azure_meter = TransactionMeter(clock)
        azure_blob = BlobStore(self.env, azure_meter,
                               self.streams.get("azure.blob"),
                               account="azblob")
        self.azure = PlatformStack(azure_telemetry, azure_billing,
                                   azure_meter, azure_blob)
        self.durable = DurableFunctionsRuntime(
            self.env, azure_telemetry, azure_billing, azure_meter,
            self.streams, calibration=self.azure_calibration,
            services={"blob": azure_blob})
        self.azure_prices = AzurePriceModel(self.azure_calibration)

    @property
    def app(self) -> FunctionAppService:
        """The Azure function app (shared by durable and plain functions)."""
        return self.durable.app

    @property
    def now(self) -> float:
        return self.env.now

    def run(self, generator: Generator) -> Any:
        """Drive a workflow generator to completion on the testbed clock."""
        def process(env):
            result = yield from generator
            return result
        return self.env.run(until=self.env.process(process(self.env)))

    def advance(self, seconds: float) -> None:
        """Let simulated time pass (background pumps keep running)."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        self.env.run(until=self.env.now + seconds)

    def stack(self, platform: str) -> PlatformStack:
        """The meter stack for 'aws' or 'azure'."""
        if platform == "aws":
            return self.aws
        if platform == "azure":
            return self.azure
        raise ValueError(f"unknown platform: {platform!r}")
