"""The testbed: one simulated world holding every registered platform.

A :class:`Testbed` owns a single simulation environment plus, per
registered :class:`~repro.platforms.backend.PlatformBackend`, a complete
service stack (runtime, storage, telemetry, billing and transaction
meters).  Deployments register their functions into the testbed; the
experiment runner drives invocations and reads measurements back out of
it.

The testbed names no platform: it iterates
:func:`~repro.platforms.backend.registered_backends` and lets each
backend construct its services.  Per-platform attributes the platform
modules historically exposed (``testbed.lambdas``, ``testbed.durable``,
``testbed.aws_calibration``, ``testbed.azure_prices``, ...) are set by
the backends' ``build`` hooks and by generic ``<name>_calibration`` /
``<name>_prices`` setattr loops, so existing deployments and tests keep
working unchanged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, Optional

from repro.platforms.backend import get_backend, registered_backends
from repro.platforms.billing import BillingMeter
from repro.platforms.faults import FaultInjector, FaultPlan
from repro.sim import Environment, RandomStreams
from repro.storage import BlobStore, TransactionMeter
from repro.telemetry import Telemetry


@dataclass
class PlatformStack:
    """One platform's services and meters."""

    telemetry: Telemetry
    billing: BillingMeter
    meter: TransactionMeter
    blob: BlobStore

    def reset_meters(self) -> None:
        """Clear billing/transaction/telemetry state between campaigns."""
        self.telemetry.reset()
        self.billing.reset()
        self.meter.reset()


class Testbed:
    """A fresh simulated world with every registered platform side by side."""

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(self, seed: int = 0,
                 calibrations: Optional[Dict[str, Any]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 audit: bool = False,
                 platforms: Optional[Iterable[str]] = None,
                 aws_calibration: Any = None,
                 azure_calibration: Any = None):
        """Build one stack per registered backend.

        ``calibrations`` maps backend names to calibration objects;
        unnamed backends get their defaults.  ``platforms`` restricts the
        build to a subset of backend names (all by default).  The old
        ``aws_calibration``/``azure_calibration`` kwargs remain as thin
        deprecation shims folding into the mapping.
        """
        self.env = Environment()
        self.streams = RandomStreams(seed=seed)
        calibrations = dict(calibrations or {})
        for legacy_name, legacy_value in (("aws", aws_calibration),
                                          ("azure", azure_calibration)):
            if legacy_value is None:
                continue
            warnings.warn(
                f"Testbed({legacy_name}_calibration=...) is deprecated; "
                f"use calibrations={{{legacy_name!r}: ...}}",
                DeprecationWarning, stacklevel=2)
            if calibrations.get(legacy_name, legacy_value) is not legacy_value:
                raise ValueError(
                    f"calibration for {legacy_name!r} passed twice "
                    "(mapping and legacy kwarg)")
            calibrations[legacy_name] = legacy_value

        backends = registered_backends()
        if platforms is not None:
            wanted = list(platforms)
            for name in wanted:
                get_backend(name)   # fail fast on unknown names
            backends = tuple(backend for backend in backends
                             if backend.name in wanted)
        known = {backend.name for backend in backends}
        for name in calibrations:
            if name not in known:
                get_backend(name)   # raises with the registered names
                raise ValueError(
                    f"calibration for {name!r} but that platform is "
                    f"excluded by platforms={sorted(known)}")

        # The auditor must become the kernel monitor before the stacks
        # exist so every CloudQueue (the task hub's control/work-item
        # queues included) self-registers at construction; it learns the
        # stack references afterwards via attach().
        self.auditor = None
        if audit:
            from repro.core.audit import InvariantAuditor
            self.auditor = InvariantAuditor()
            self.env.monitor = self.auditor
        # The injector must exist before the services so they can thread
        # it through to handlers and queues at registration time.  With
        # no (enabled) plan it stays None and every platform behaves
        # bit-identically to a fault-free testbed.
        self.faults: Optional[FaultInjector] = None
        if fault_plan is not None and fault_plan.enabled:
            self.faults = FaultInjector(plan=fault_plan,
                                        streams=self.streams)

        self.platform_names: tuple = tuple(backend.name
                                           for backend in backends)
        self.stacks: Dict[str, PlatformStack] = {}
        self.calibrations: Dict[str, Any] = {}
        self.price_models: Dict[str, Any] = {}
        for backend in backends:
            calibration = calibrations.get(backend.name)
            if calibration is None:
                calibration = backend.default_calibration()
            stack = backend.build(self, calibration)
            prices = backend.price_model(calibration)
            self.stacks[backend.name] = stack
            self.calibrations[backend.name] = calibration
            self.price_models[backend.name] = prices
            # Back-compat attribute surface: testbed.aws,
            # testbed.azure_calibration, testbed.gcp_prices, ...
            setattr(self, backend.name, stack)
            setattr(self, f"{backend.name}_calibration", calibration)
            setattr(self, f"{backend.name}_prices", prices)

        if self.faults is not None and (
                self.faults.plan.host_crash_times
                or self.faults.crash_outage_starts):
            self.env.process(self._host_crash_schedule())

        if self.auditor is not None:
            self.auditor.attach(self)

    def _host_crash_schedule(self) -> Generator:
        """Crash every platform's hosts at each scheduled chaos time.

        The schedule merges explicit ``host_crash_times`` with the starts
        of crash-mode outage windows (a zone outage drops every warm pool
        the instant it begins).  Each backend decides what a host crash
        means for it (dropping warm containers, recovering orchestrations
        from history, ...).  Runs as an unmonitored background process,
        so it must never raise: backends swallow recovery failures
        themselves (an un-recovered instance is itself a fault outcome).
        """
        faults = self.faults
        schedule = sorted(
            [(t, "host") for t in faults.plan.host_crash_times]
            + [(t, "outage") for t in faults.crash_outage_starts])
        for crash_time, kind in schedule:
            delay = crash_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            crashed_at = self.env.now
            if kind == "host":
                faults.host_crashes += 1
            else:
                faults.outage_host_drops += 1
            for name in self.platform_names:
                recovery = get_backend(name).crash_host(self)
                if recovery is not None:
                    yield from recovery
            if kind == "host":
                faults.host_recovery_times.append(self.env.now - crashed_at)

    @property
    def app(self):
        """The Azure function app (shared by durable and plain functions)."""
        return self.durable.app

    @property
    def now(self) -> float:
        return self.env.now

    def run(self, generator: Generator) -> Any:
        """Drive a workflow generator to completion on the testbed clock."""
        def process(env):
            result = yield from generator
            return result
        return self.env.run(until=self.env.process(process(self.env)))

    def advance(self, seconds: float) -> None:
        """Let simulated time pass (background pumps keep running)."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        self.env.run(until=self.env.now + seconds)

    def stack(self, platform: str) -> PlatformStack:
        """The meter stack for a registered platform name."""
        try:
            return self.stacks[platform]
        except KeyError:
            raise ValueError(
                f"unknown platform: {platform!r} (this testbed built "
                f"{list(self.platform_names)})") from None

    def calibration(self, platform: str) -> Any:
        """The calibration a registered platform was built with."""
        try:
            return self.calibrations[platform]
        except KeyError:
            raise ValueError(
                f"unknown platform: {platform!r} (this testbed built "
                f"{list(self.platform_names)})") from None
