"""The testbed: one simulated world holding both cloud platforms.

A :class:`Testbed` owns a single simulation environment plus, per
platform, a complete service stack (runtime, storage, telemetry, billing
and transaction meters).  Deployments register their functions into the
testbed; the experiment runner drives invocations and reads measurements
back out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.aws import AWSPriceModel, LambdaService, StepFunctionsService
from repro.azure import (
    AzurePriceModel,
    DurableFunctionsRuntime,
    FunctionAppService,
)
from repro.platforms.billing import BillingMeter
from repro.platforms.faults import FaultInjector, FaultPlan
from repro.platforms.calibration import (
    AWSCalibration,
    AzureCalibration,
    default_aws_calibration,
    default_azure_calibration,
)
from repro.sim import Environment, RandomStreams
from repro.storage import BlobStore, TransactionMeter
from repro.telemetry import Telemetry


@dataclass
class PlatformStack:
    """One platform's services and meters."""

    telemetry: Telemetry
    billing: BillingMeter
    meter: TransactionMeter
    blob: BlobStore

    def reset_meters(self) -> None:
        """Clear billing/transaction/telemetry state between campaigns."""
        self.telemetry.reset()
        self.billing.reset()
        self.meter.reset()


class Testbed:
    """A fresh simulated world with AWS and Azure stacks side by side."""

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(self, seed: int = 0,
                 aws_calibration: Optional[AWSCalibration] = None,
                 azure_calibration: Optional[AzureCalibration] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 audit: bool = False):
        self.env = Environment()
        self.streams = RandomStreams(seed=seed)
        self.aws_calibration = aws_calibration or default_aws_calibration()
        self.azure_calibration = (azure_calibration
                                  or default_azure_calibration())
        # The auditor must become the kernel monitor before the stacks
        # exist so every CloudQueue (the task hub's control/work-item
        # queues included) self-registers at construction; it learns the
        # stack references afterwards via attach().
        self.auditor = None
        if audit:
            from repro.core.audit import InvariantAuditor
            self.auditor = InvariantAuditor()
            self.env.monitor = self.auditor
        # The injector must exist before the services so they can thread
        # it through to handlers and queues at registration time.  With
        # no (enabled) plan it stays None and every platform behaves
        # bit-identically to a fault-free testbed.
        self.faults: Optional[FaultInjector] = None
        if fault_plan is not None and fault_plan.enabled:
            self.faults = FaultInjector(plan=fault_plan,
                                        streams=self.streams)

        clock = lambda: self.env.now  # noqa: E731 - tiny clock closure

        # -- AWS stack ----------------------------------------------------------
        aws_telemetry = Telemetry(
            clock, enabled=self.aws_calibration.telemetry_spans)
        aws_billing = BillingMeter(clock)
        aws_meter = TransactionMeter(clock)
        aws_blob = BlobStore(self.env, aws_meter,
                             self.streams.get("aws.blob"), account="s3")
        self.aws = PlatformStack(aws_telemetry, aws_billing, aws_meter,
                                 aws_blob)
        self.lambdas = LambdaService(
            self.env, aws_telemetry, aws_billing, self.streams,
            calibration=self.aws_calibration,
            services={"blob": aws_blob}, faults=self.faults)
        self.stepfunctions = StepFunctionsService(
            self.env, self.lambdas, aws_telemetry, aws_meter,
            faults=self.faults)
        self.aws_prices = AWSPriceModel(self.aws_calibration)

        # -- Azure stack ---------------------------------------------------------
        azure_telemetry = Telemetry(
            clock, enabled=self.azure_calibration.telemetry_spans)
        azure_billing = BillingMeter(clock)
        azure_meter = TransactionMeter(clock)
        azure_blob = BlobStore(self.env, azure_meter,
                               self.streams.get("azure.blob"),
                               account="azblob")
        self.azure = PlatformStack(azure_telemetry, azure_billing,
                                   azure_meter, azure_blob)
        self.durable = DurableFunctionsRuntime(
            self.env, azure_telemetry, azure_billing, azure_meter,
            self.streams, calibration=self.azure_calibration,
            services={"blob": azure_blob}, faults=self.faults)
        self.azure_prices = AzurePriceModel(self.azure_calibration)

        if self.faults is not None and self.faults.plan.host_crash_times:
            self.env.process(self._host_crash_schedule())

        if self.auditor is not None:
            self.auditor.attach(self)

    def _host_crash_schedule(self) -> Generator:
        """Crash every host at each scheduled time, then recover Azure.

        Runs as an unmonitored background process, so it must never
        raise: recovery failures are swallowed (the affected instance
        simply stays un-recovered, which is itself a fault outcome).
        """
        faults = self.faults
        for crash_time in faults.plan.host_crash_times:
            delay = crash_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            crashed_at = self.env.now
            faults.host_crashes += 1
            self.lambdas.simulate_host_crash()
            self.app.simulate_host_crash()
            hub = self.durable.taskhub
            pending = list(hub.simulate_host_crash())
            for instance_id in pending:
                try:
                    yield from hub.recover_instance(instance_id)
                except Exception:
                    pass
            faults.host_recovery_times.append(self.env.now - crashed_at)

    @property
    def app(self) -> FunctionAppService:
        """The Azure function app (shared by durable and plain functions)."""
        return self.durable.app

    @property
    def now(self) -> float:
        return self.env.now

    def run(self, generator: Generator) -> Any:
        """Drive a workflow generator to completion on the testbed clock."""
        def process(env):
            result = yield from generator
            return result
        return self.env.run(until=self.env.process(process(self.env)))

    def advance(self, seconds: float) -> None:
        """Let simulated time pass (background pumps keep running)."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        self.env.run(until=self.env.now + seconds)

    def stack(self, platform: str) -> PlatformStack:
        """The meter stack for 'aws' or 'azure'."""
        if platform == "aws":
            return self.aws
        if platform == "azure":
            return self.azure
        raise ValueError(f"unknown platform: {platform!r}")
