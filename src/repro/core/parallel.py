"""Parallel campaign execution: fan independent campaigns across cores.

The paper's protocol is "over one hundred iterations of each
implementation" across six variants — hours of serial simulation, yet
every campaign is an independent, deterministic discrete-event run given
``(deployment, workload, calibration, seed)``.  This module makes that
independence explicit:

* :class:`CampaignSpec` — a frozen, picklable description of one
  campaign (variant, workload, scale, calibration overrides, seed,
  iteration counts, campaign type).
* :func:`execute_spec` — a pure worker function: builds a fresh
  :class:`Testbed` from the spec and replays it.  Running a spec in the
  parent process, a worker process, or from a cache file yields
  bit-identical results.
* :class:`ParallelRunner` — schedules a list of specs across a
  ``ProcessPoolExecutor`` (optionally consulting a
  :class:`repro.core.cache.ResultCache`) and streams the outcomes back
  in spec order, drop-in equivalent to driving the serial
  :class:`ExperimentRunner` yourself.

Example
-------
>>> from repro.core.parallel import CampaignSpec
>>> spec = CampaignSpec(deployment="AWS-Lambda", scale="small",
...                     iterations=5, seed=29)
>>> spec.campaign
'latency'
>>> len(spec.spec_hash())
64
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.costs import CostReport, cost_report
from repro.core.deployments import (
    build_ml_inference_deployments,
    build_ml_training_deployments,
    build_video_deployments,
)
from repro.core.experiment import (
    CampaignResult,
    ColdStartCampaign,
    ExperimentRunner,
)
from repro.core.testbed import Testbed
from repro.platforms.backend import backend_names, get_backend
from repro.platforms.faults import FaultPlan

class SweepError(Exception):
    """Base of the typed sweep-failure taxonomy.

    Every subclass pickles cleanly (workers raise across process
    boundaries) and names the failing spec's content hash, so a log
    line identifies exactly which configuration of a thousand-spec
    sweep went wrong.  :class:`SpecExecutionError` lives here; the
    supervision-level failures (:class:`~repro.core.supervise.WorkerCrash`,
    :class:`~repro.core.supervise.SpecTimeout`) extend the taxonomy in
    :mod:`repro.core.supervise`.
    """


class SpecExecutionError(SweepError):
    """One spec's campaign raised inside a worker.

    Deterministic by construction — the simulation is a pure function
    of the spec — so supervisors report these instead of retrying them.
    """

    def __init__(self, spec: "CampaignSpec", message: str,
                 traceback_text: str = "",
                 cause: Optional[BaseException] = None):
        super().__init__(spec, message, traceback_text)
        self.spec = spec
        self.spec_hash = spec.spec_hash()
        self.message = message
        self.traceback_text = traceback_text
        #: the original exception when it was raised in this process or
        #: unpickled from a worker (not preserved across re-pickling)
        self.cause = cause

    @property
    def repro_hint(self) -> str:
        """Ready-to-paste command reconstructing the failing spec."""
        from repro.core.audit import spec_repro_hint
        return spec_repro_hint(self.spec)

    def __str__(self) -> str:
        return (f"spec {self.spec_hash[:12]} ({self.spec.deployment} "
                f"{self.spec.campaign}) failed: {self.message}\n"
                f"  repro: {self.repro_hint}")

    def __reduce__(self):
        # Rebuild from args alone: ``cause`` is whatever the campaign
        # raised and need not be picklable, so it must not ride along in
        # ``__dict__`` when a worker ships this failure to its parent.
        return (type(self),
                (self.spec, self.message, self.traceback_text))


WORKLOADS = ("ml-training", "ml-inference", "video")
CAMPAIGN_TYPES = ("latency", "coldstart", "fanout", "reliability",
                  "overload", "resilience")
#: arrival models an ``overload`` campaign may name (mirrors
#: :data:`repro.core.overload.ARRIVAL_KINDS`, kept literal to avoid an
#: import cycle)
ARRIVAL_KINDS = ("poisson", "uniform", "bursty")
#: deployment variants each workload can build (mirrors the
#: ``build_*_deployments`` maps, kept literal so spec validation needs
#: no workload construction)
WORKLOAD_VARIANTS = {
    "ml-training": ("AWS-Lambda", "AWS-Step", "Az-Func", "Az-Queue",
                    "Az-Dorch", "Az-Dent", "GCP-Func", "GCP-Flows"),
    "ml-inference": ("AWS-Step", "Az-Dorch", "Az-Dent", "GCP-Flows"),
    "video": ("AWS-Lambda", "AWS-Step", "Az-Func", "Az-Dorch",
              "GCP-Flows"),
}


def _frozen_items(value: Any) -> Tuple[Tuple[str, Any], ...]:
    """Dicts/pair-lists become sorted key/value tuples so specs stay
    hashable and hash independently of insertion order."""
    pairs = value.items() if isinstance(value, dict) else value
    return tuple(sorted((tuple(pair) for pair in pairs),
                        key=lambda pair: pair[0]))


def _deep_freeze(value: Any) -> Any:
    """Recursively turn lists/tuples into tuples so nested structures
    (outage windows, ...) stay hashable inside a frozen spec."""
    if isinstance(value, (list, tuple)):
        return tuple(_deep_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to replay one campaign in any process.

    ``calibration_overrides`` and ``invoke_kwargs`` accept plain dicts
    for convenience; they are normalized to sorted tuples so the spec
    stays hashable and picklable.  Override keys use the
    ``"<platform>.field"`` convention of
    :class:`repro.core.sweep.GridSweep` (``"aws.field"``,
    ``"azure.field"``, ``"gcp.field"``, ...).
    """

    deployment: str
    workload: str = "ml-training"
    scale: str = "small"              # ML dataset scale
    fanout: int = 20                  # video workload worker count
    seed: int = 0                     # testbed RNG seed
    workload_seed: int = 0            # dataset/model generation seed
    campaign: str = "latency"
    iterations: int = 10              # latency: measured runs
    warmup: int = 1                   # latency: unmeasured lead-in runs
    think_time_s: float = 30.0
    settle_time_s: float = 5.0
    interval_s: float = 3600.0        # coldstart: request spacing
    days: float = 4.0                 # coldstart: campaign length
    batch: int = 0                    # fanout: concurrent invocations
    idle_window_s: float = 0.0        # post-campaign idle metering window
    arrival: str = "poisson"          # overload: arrival-process kind
    arrival_rate_per_s: float = 0.0   # overload: offered open-loop rate
    horizon_s: float = 0.0            # overload: arrival window length
    calibration_overrides: Tuple[Tuple[str, Any], ...] = ()
    invoke_kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: sorted ``FaultPlan.to_items()`` pairs; empty = fault-free
    fault_plan: Tuple[Tuple[str, Any], ...] = ()
    #: sorted ``MitigationPolicy.to_items()`` pairs (resilience
    #: campaigns); empty = the default policy (hard timeout only)
    mitigation: Tuple[Tuple[str, Any], ...] = ()
    #: resilience: SLO targets the summary renders verdicts against
    slo_availability: float = 0.999
    slo_p99_s: float = 0.0            # 0 = no latency SLO
    #: run the invariant auditor?  None defers to
    #: :data:`repro.core.audit.DEFAULT_AUDIT` at execution time.
    audit: Optional[bool] = None

    def __post_init__(self):
        if self.workload not in WORKLOADS:
            raise ValueError(f"workload must be one of {WORKLOADS}")
        if self.deployment not in WORKLOAD_VARIANTS[self.workload]:
            raise ValueError(
                f"deployment {self.deployment!r} is not a "
                f"{self.workload} variant; choose from "
                f"{WORKLOAD_VARIANTS[self.workload]}")
        if self.campaign not in CAMPAIGN_TYPES:
            raise ValueError(f"campaign must be one of {CAMPAIGN_TYPES}")
        if (self.campaign in ("latency", "reliability", "resilience")
                and self.iterations <= 0):
            raise ValueError("iterations must be positive")
        if not 0.0 < self.slo_availability <= 1.0:
            raise ValueError("slo_availability must lie in (0, 1]")
        if self.slo_p99_s < 0:
            raise ValueError("slo_p99_s must be non-negative")
        if self.campaign == "overload":
            if self.arrival not in ARRIVAL_KINDS:
                raise ValueError(
                    f"arrival must be one of {ARRIVAL_KINDS}")
            if self.arrival_rate_per_s <= 0:
                raise ValueError(
                    "overload campaigns need arrival_rate_per_s > 0")
            if self.horizon_s <= 0:
                raise ValueError("overload campaigns need horizon_s > 0")
        object.__setattr__(self, "calibration_overrides",
                           _frozen_items(self.calibration_overrides))
        object.__setattr__(self, "invoke_kwargs",
                           _frozen_items(self.invoke_kwargs))
        if self.fault_plan:
            normalized = tuple(sorted(
                (str(name), _deep_freeze(value))
                for name, value in self.fault_plan))
            object.__setattr__(self, "fault_plan", normalized)
            FaultPlan.from_items(normalized)   # validate eagerly
        if self.mitigation:
            from repro.core.mitigation import MitigationPolicy
            normalized = tuple(sorted(
                (str(name), _deep_freeze(value))
                for name, value in self.mitigation))
            object.__setattr__(self, "mitigation", normalized)
            MitigationPolicy.from_items(normalized)   # validate eagerly
        known_platforms = backend_names()
        for name, _ in self.calibration_overrides:
            platform, _, parameter = str(name).partition(".")
            if platform not in known_platforms or not parameter:
                raise ValueError(
                    f"override keys look like '<platform>.field' with a "
                    f"registered platform {known_platforms}, got {name!r}")
        if self.audit:
            for name, value in self.calibration_overrides:
                if str(name).endswith(".telemetry_spans") and not value:
                    raise ValueError(
                        f"audit=True needs telemetry spans: override "
                        f"{name!r}={value!r} would starve the auditor "
                        f"of the execution-span evidence it checks "
                        f"billing against (drop the override or set "
                        f"audit=False)")

    # -- identity ---------------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """A stable, JSON-ready dict of every field (for hashing)."""
        payload = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = [list(item) for item in value]
            payload[spec_field.name] = value
        return payload

    def spec_hash(self) -> str:
        """Content hash of the spec itself (not the calibration)."""
        blob = json.dumps(self.canonical(), sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()

    def calibration_hash(self) -> str:
        """Content hash of the *effective* calibrations (defaults plus
        this spec's overrides), so editing a default constant in any
        platform's calibration module invalidates cached results."""
        blob = repr(sorted((name, asdict(calibration))
                           for name, calibration
                           in self.calibrations().items()))
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- materialization -------------------------------------------------------

    def fault_plan_obj(self) -> Optional[FaultPlan]:
        """The spec's :class:`FaultPlan`, or ``None`` when fault-free."""
        if not self.fault_plan:
            return None
        return FaultPlan.from_items(self.fault_plan)

    def mitigation_obj(self):
        """The spec's :class:`~repro.core.mitigation.MitigationPolicy`
        (the hard-timeout-only default when no pairs were given)."""
        from repro.core.mitigation import MitigationPolicy
        return MitigationPolicy.from_items(self.mitigation)

    def calibrations(self) -> Dict[str, Any]:
        """Fresh default calibrations (one per registered platform) with
        this spec's overrides applied, keyed by backend name."""
        calibrations = {name: get_backend(name).default_calibration()
                        for name in backend_names()}
        for name, value in self.calibration_overrides:
            platform, _, parameter = str(name).partition(".")
            target = calibrations[platform]
            if not hasattr(target, parameter):
                raise AttributeError(
                    f"{type(target).__name__} has no field {parameter!r}")
            setattr(target, parameter, value)
        # setattr bypasses __post_init__, so re-validate the results.
        for calibration in calibrations.values():
            calibration.validate()
        return calibrations

    def build_deployment(self, testbed: Testbed):
        """Build this spec's deployment variant on ``testbed``."""
        if self.workload == "ml-training":
            variants = build_ml_training_deployments(
                testbed, self.scale, seed=self.workload_seed)
        elif self.workload == "ml-inference":
            variants = build_ml_inference_deployments(
                testbed, self.scale, seed=self.workload_seed)
        else:
            variants = build_video_deployments(
                testbed, n_workers=self.fanout, seed=self.workload_seed)
        if self.deployment not in variants:
            raise KeyError(
                f"workload {self.workload!r} has no variant "
                f"{self.deployment!r}; choose from {sorted(variants)}")
        return variants[self.deployment]


@dataclass
class CampaignOutcome:
    """One executed spec: the campaign, its cost report and idle meter."""

    spec: CampaignSpec
    campaign: CampaignResult
    cost: CostReport
    #: transactions metered during ``spec.idle_window_s`` of idle time
    idle_transactions: int = 0
    #: reliability campaigns attach their summary report here
    reliability: Optional[Any] = None
    #: overload campaigns attach their summary report here
    overload: Optional[Any] = None
    #: resilience campaigns attach their summary report here
    resilience: Optional[Any] = None
    #: :class:`repro.core.audit.AuditReport` when the spec was audited
    audit: Optional[Any] = None
    #: True when this outcome was served from a result cache
    cached: bool = field(default=False, compare=False)


def execute_spec(spec: CampaignSpec) -> CampaignOutcome:
    """Run one campaign spec on a fresh testbed (the pure worker).

    Deterministic: the testbed, its RNG streams and the workload are all
    derived from the spec alone, so the same spec produces bit-identical
    results in any process.  To guarantee that, the process-global run-id
    counter (:attr:`Deployment._run_ids`) is reset here — run ids name
    blob keys and run values, and must not depend on how many campaigns
    this process happened to run earlier.  Consequently a spec must not
    execute concurrently with a hand-driven campaign *on the same
    testbed* in the same process (worker processes are unaffected).
    """
    import itertools

    from repro.core.deployments.base import Deployment
    Deployment._run_ids = itertools.count(1)

    if spec.campaign == "reliability":
        from repro.core.reliability import execute_reliability_spec
        return execute_reliability_spec(spec)
    if spec.campaign == "overload":
        from repro.core.overload import execute_overload_spec
        return execute_overload_spec(spec)
    if spec.campaign == "resilience":
        from repro.core.resilience import execute_resilience_spec
        return execute_resilience_spec(spec)

    from repro.core import audit as audit_mod

    testbed = Testbed(seed=spec.seed, calibrations=spec.calibrations(),
                      fault_plan=spec.fault_plan_obj(),
                      audit=audit_mod.enabled_for(spec.audit))
    deployment = spec.build_deployment(testbed)
    kwargs = dict(spec.invoke_kwargs) or None

    if spec.campaign == "latency":
        runner = ExperimentRunner(think_time_s=spec.think_time_s,
                                  settle_time_s=spec.settle_time_s)
        campaign = runner.run_campaign(deployment, spec.iterations,
                                       warmup=spec.warmup,
                                       invoke_kwargs=kwargs)
        per_runs = spec.warmup + spec.iterations
    elif spec.campaign == "coldstart":
        protocol = ColdStartCampaign(interval_s=spec.interval_s,
                                     days=spec.days)
        campaign = protocol.run(deployment)
        per_runs = protocol.request_count
    else:  # fanout
        runner = ExperimentRunner(think_time_s=spec.think_time_s,
                                  settle_time_s=spec.settle_time_s)
        batch = spec.batch or spec.fanout
        runs = runner.run_parallel_batch(deployment, batch,
                                         invoke_kwargs=kwargs)
        campaign = CampaignResult(deployment=deployment.name, runs=runs)
        per_runs = batch

    cost = cost_report(deployment, per_runs=per_runs)
    idle_transactions = 0
    if spec.idle_window_s > 0:
        before = len(deployment.stack.meter)
        testbed.advance(spec.idle_window_s)
        idle_transactions = len(deployment.stack.meter) - before
    report = None
    if testbed.auditor is not None:
        report = testbed.auditor.finalize()
        if audit_mod.RAISE_ON_VIOLATION:
            report.raise_if_violations(spec=spec)
    return CampaignOutcome(spec=spec, campaign=campaign, cost=cost,
                           idle_transactions=idle_transactions,
                           audit=report)


def _guarded_execute(
        spec: CampaignSpec) -> Union[CampaignOutcome, SpecExecutionError]:
    """:func:`execute_spec`, but a raising spec becomes a typed failure
    value so sibling specs in the same batch still complete."""
    try:
        return execute_spec(spec)
    except Exception as error:
        return SpecExecutionError(spec, f"{type(error).__name__}: {error}",
                                  traceback.format_exc(), cause=error)


def _prewarm_workloads(specs: Iterable[CampaignSpec]) -> None:
    """Memoize the real-compute workload artifacts in this process.

    Worker processes are forked where the platform allows it, so paying
    for dataset generation and model training once here means every
    worker inherits the memo instead of re-training per process.
    """
    from repro.core.deployments.ml import ml_workload
    from repro.core.deployments.video import video_workload

    for spec in specs:
        if spec.workload in ("ml-training", "ml-inference"):
            ml_workload(spec.scale, spec.workload_seed)
        else:
            video_workload(spec.fanout, spec.workload_seed)


class ParallelRunner:
    """Drives a batch of campaign specs, in parallel when it helps.

    Results come back as :class:`CampaignOutcome` objects in spec order
    and are bit-identical to running each spec serially through
    :class:`ExperimentRunner` (asserted by
    ``tests/core/test_parallel.py``).  With a ``cache``, completed specs
    are reused across invocations instead of re-simulated.

    ``workers`` defaults to the machine's CPU count; ``workers <= 1``
    runs everything serially in-process (no executor overhead).  If the
    process pool cannot be used (sandboxed interpreter, unpicklable
    override values), the runner falls back to the serial path rather
    than failing the campaign.
    """

    def __init__(self, workers: Optional[int] = None, cache: Any = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.cache = cache

    def run(self, specs: Sequence[CampaignSpec]) -> List[CampaignOutcome]:
        specs = list(specs)
        outcomes: List[Optional[CampaignOutcome]] = [None] * len(specs)

        misses: List[int] = []
        for index, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                hit.cached = True
                outcomes[index] = hit
            else:
                misses.append(index)

        if misses:
            computed = self._execute([specs[i] for i in misses])
            failures: List[SpecExecutionError] = []
            for index, outcome in zip(misses, computed):
                if isinstance(outcome, SpecExecutionError):
                    failures.append(outcome)
                    continue
                outcomes[index] = outcome
                if self.cache is not None:
                    self.cache.put(outcome.spec, outcome)
            if failures:
                # Every healthy spec has already completed (and been
                # cached), so a re-run after the fix only pays for the
                # broken ones.  SupervisedRunner offers the no-raise
                # variant of this contract (PartialSweepResult).
                raise failures[0] from failures[0].cause
        return outcomes  # type: ignore[return-value]

    def run_campaigns(self,
                      specs: Sequence[CampaignSpec]) -> List[CampaignResult]:
        """Like :meth:`run` but returns just the campaign results."""
        return [outcome.campaign for outcome in self.run(specs)]

    # -- internals --------------------------------------------------------------

    def _execute(self, specs: Sequence[CampaignSpec],
                 ) -> List[Union[CampaignOutcome, SpecExecutionError]]:
        if self.workers <= 1 or len(specs) <= 1:
            return [_guarded_execute(spec) for spec in specs]
        try:
            return self._execute_pool(specs)
        except (BrokenExecutor, OSError, ValueError, TypeError,
                AttributeError, ImportError, pickle.PicklingError):
            # Process pools are a perf optimization, never a correctness
            # requirement: degrade to the serial path.
            return [_guarded_execute(spec) for spec in specs]

    def _execute_pool(self, specs: Sequence[CampaignSpec],
                      ) -> List[Union[CampaignOutcome, SpecExecutionError]]:
        _prewarm_workloads(specs)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        max_workers = min(self.workers, len(specs))
        results: List[Union[CampaignOutcome, SpecExecutionError]] = []
        with ProcessPoolExecutor(max_workers=max_workers,
                                 mp_context=context) as pool:
            futures = [pool.submit(execute_spec, spec) for spec in specs]
            for spec, future in zip(specs, futures):
                # One bad spec must not abort the whole pool: collect a
                # typed, hash-bearing failure and keep draining.  Pool
                # machinery faults (a broken executor, unpicklable spec
                # payloads) still propagate so _execute can fall back.
                try:
                    results.append(future.result())
                except (BrokenExecutor, pickle.PicklingError):
                    raise
                except Exception as error:
                    results.append(SpecExecutionError(
                        spec, f"{type(error).__name__}: {error}",
                        traceback.format_exc(), cause=error))
        return results


def ml_training_specs(variants: Sequence[str], scale: str, iterations: int,
                      seed: int = 0, warmup: int = 1,
                      **spec_kwargs: Any) -> List[CampaignSpec]:
    """Latency-campaign specs for a list of ML-training variants."""
    return [CampaignSpec(deployment=name, workload="ml-training",
                         scale=scale, iterations=iterations, seed=seed,
                         warmup=warmup, **spec_kwargs)
            for name in variants]
