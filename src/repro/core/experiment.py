"""Measurement campaigns: the paper's experimental protocol (§IV).

* :class:`ExperimentRunner` — "results are collected from running over
  one hundred iterations of each implementation": repeated invocations on
  one testbed, with latency stats, per-run breakdowns and cost meters.
* :class:`ColdStartCampaign` — "each workflow is run for four days, with
  the rate of one request per hour": 96 widely-spaced invocations whose
  trigger-to-start delays form Fig 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.deployments.base import Deployment, RunResult
from repro.core.metrics import (
    LatencyBreakdown,
    LatencyStats,
    breakdown_from_spans,
    percentile,
    summarize,
)


@dataclass
class CampaignResult:
    """Everything one campaign produced for one deployment."""

    deployment: str
    runs: List[RunResult] = field(default_factory=list)
    breakdowns: List[LatencyBreakdown] = field(default_factory=list)

    @property
    def latencies(self) -> List[float]:
        return [run.latency for run in self.runs]

    @property
    def cold_start_delays(self) -> List[float]:
        return [run.cold_start_delay for run in self.runs
                if run.cold_start_delay is not None]

    def stats(self) -> LatencyStats:
        return summarize(self.latencies)

    def median_breakdown(self) -> LatencyBreakdown:
        """Component-wise median of the per-run breakdowns."""
        if not self.breakdowns:
            raise ValueError("no breakdowns recorded")
        return LatencyBreakdown(
            queue_time=percentile(
                [b.queue_time for b in self.breakdowns], 50),
            execution_time=percentile(
                [b.execution_time for b in self.breakdowns], 50),
            cold_start_time=percentile(
                [b.cold_start_time for b in self.breakdowns], 50))

    def p99_breakdown(self) -> LatencyBreakdown:
        """Breakdown of the run nearest the 99ile latency (Fig 8)."""
        if not self.breakdowns:
            raise ValueError("no breakdowns recorded")
        target = percentile(self.latencies, 99)
        index = min(range(len(self.runs)),
                    key=lambda i: abs(self.runs[i].latency - target))
        return self.breakdowns[index]


class ExperimentRunner:
    """Runs latency campaigns against deployed variants."""

    def __init__(self, think_time_s: float = 30.0,
                 settle_time_s: float = 5.0):
        #: pause between iterations (containers stay warm, queues drain)
        self.think_time_s = think_time_s
        #: pause after each run so async billing/polling settles
        self.settle_time_s = settle_time_s

    def run_campaign(self, deployment: Deployment, iterations: int,
                     warmup: int = 1,
                     invoke_kwargs: Optional[Dict[str, Any]] = None
                     ) -> CampaignResult:
        """``iterations`` measured runs (after ``warmup`` unmeasured)."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        deployment.deploy()
        testbed = deployment.testbed
        auditor = getattr(testbed, "auditor", None)
        telemetry = deployment.stack.telemetry
        result = CampaignResult(deployment=deployment.name)
        kwargs = invoke_kwargs or {}

        for index in range(warmup + iterations):
            window_start = testbed.now
            span_cursor = len(telemetry.spans)
            if auditor is not None:
                auditor.note_arrival()
            run = testbed.run(deployment.invoke(**kwargs))
            if auditor is not None:
                auditor.note_outcome("succeeded")
            testbed.advance(self.settle_time_s)
            if index >= warmup:
                result.runs.append(run)
                result.breakdowns.append(breakdown_from_spans(
                    telemetry, since=window_start, until=testbed.now,
                    start_hint=span_cursor))
            testbed.advance(self.think_time_s)
        return result

    def run_parallel_batch(self, deployment: Deployment, batch: int,
                           invoke_kwargs: Optional[Dict[str, Any]] = None
                           ) -> List[RunResult]:
        """``batch`` concurrent invocations (fan-out stress).

        Unlike :meth:`run_campaign`, this returns raw per-run results
        with *no* per-run breakdowns: the batch's invocations interleave
        on the testbed, so their telemetry spans overlap and a per-run
        queue/execution window is not well-defined.  Aggregate the whole
        batch with :func:`repro.core.metrics.breakdown_from_spans` over
        the full batch window instead.  The testbed is settled for
        ``settle_time_s`` after the batch, as after every campaign run,
        so async billing/polling is drained before meters are read.
        """
        deployment.deploy()
        testbed = deployment.testbed
        auditor = getattr(testbed, "auditor", None)
        kwargs = invoke_kwargs or {}

        def launcher(env):
            processes = []
            for _ in range(batch):
                if auditor is not None:
                    auditor.note_arrival()
                processes.append(
                    env.process(_drive(deployment.invoke(**kwargs))))
            yield env.all_of(processes)
            return [process.value for process in processes]

        runs = testbed.env.run(
            until=testbed.env.process(launcher(testbed.env)))
        if auditor is not None:
            for _ in runs:
                auditor.note_outcome("succeeded")
        testbed.advance(self.settle_time_s)
        return runs


def _drive(generator: Generator):
    result = yield from generator
    return result


class ColdStartCampaign:
    """The paper's 4-day, one-request-per-hour cold-start protocol."""

    def __init__(self, interval_s: float = 3600.0, days: float = 4.0):
        if interval_s <= 0 or days <= 0:
            raise ValueError("interval and days must be positive")
        self.interval_s = interval_s
        self.days = days

    @property
    def request_count(self) -> int:
        return int(self.days * 86400.0 / self.interval_s)

    def run(self, deployment: Deployment) -> CampaignResult:
        """Returns a campaign whose cold_start_delays form Fig 10."""
        deployment.deploy()
        testbed = deployment.testbed
        auditor = getattr(testbed, "auditor", None)
        result = CampaignResult(deployment=deployment.name)
        for _ in range(self.request_count):
            if auditor is not None:
                auditor.note_arrival()
            run = testbed.run(deployment.invoke())
            if auditor is not None:
                auditor.note_outcome("succeeded")
            result.runs.append(run)
            elapsed = testbed.now - run.started_at
            testbed.advance(max(0.0, self.interval_s - elapsed))
        return result
