"""Supervised sweep execution: the harness survives what it simulates.

:class:`~repro.core.parallel.ParallelRunner` assumes a well-behaved
world — workers never die, specs never hang, nobody presses Ctrl-C.
Long campaigns live in the other world.  :class:`SupervisedRunner` runs
the same specs with a supervision layer wrapped around every worker:

* **Isolation** — each spec runs in its own worker process (fresh
  ``multiprocessing.Process``, at most ``workers`` concurrent), so a
  SIGKILL, OOM kill or segfault costs one attempt of one spec, never
  the sweep.
* **Heartbeats** — every worker beats a shared timestamp from a
  background thread; a worker whose heart stops (stuck in a syscall,
  swapped to death) is detected and killed even if its wall-clock
  deadline is far away.
* **Watchdog deadlines** — ``spec_timeout_s`` bounds each attempt's
  wall-clock time; a worker past its deadline is SIGKILLed and the spec
  becomes a :class:`SpecTimeout` (after restarts are exhausted).
* **Bounded restarts** — crashed/stalled/timed-out specs are relaunched
  up to ``max_restarts`` times with capped exponential backoff.
  Deterministic *exceptions* (:class:`SpecExecutionError`) are never
  retried: the simulation is a pure function of the spec, so the retry
  would fail identically.
* **Graceful degradation** — the sweep always finishes: the result is
  a :class:`PartialSweepResult` listing outcomes in spec order plus a
  typed failure record per spec that exhausted its restarts.
* **Checkpointing** — with a :class:`~repro.core.checkpoint.SweepJournal`
  every completed outcome (including cache hits) is flushed to disk the
  moment it exists, so ``repro resume`` after any kind of death re-runs
  only the missing specs and merges bit-identically.
* **Signal safety** — SIGINT/SIGTERM stop the sweep *after* draining
  every already-completed result from worker pipes into the journal;
  a second signal forces immediate exit.
* **Self-chaos** — a :class:`ChaosPlan` makes the supervisor SIGKILL
  its own workers at seeded points, which is how the test suite proves
  recovery yields byte-identical outcomes (the harness injects faults
  into platforms all day; it should survive its own medicine).

When worker processes cannot be spawned at all (sandboxed
interpreters), the runner degrades to in-process execution: no crash
isolation, but journaling, typed failures and signal-safe flushing all
still hold.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import sys
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Union

from repro.core.checkpoint import SweepJournal
from repro.core.parallel import (
    CampaignOutcome,
    CampaignSpec,
    SpecExecutionError,
    SweepError,
    _prewarm_workloads,
    execute_spec,
)

#: how often workers refresh their heartbeat timestamp
HEARTBEAT_INTERVAL_S = 0.2


class WorkerCrash(SweepError):
    """A worker died (SIGKILL, OOM, segfault, stalled heartbeat)
    without reporting a result for its spec."""

    def __init__(self, spec: CampaignSpec, detail: str):
        super().__init__(spec, detail)
        self.spec = spec
        self.spec_hash = spec.spec_hash()
        self.detail = detail

    def __str__(self) -> str:
        return (f"worker for spec {self.spec_hash[:12]} "
                f"({self.spec.deployment} {self.spec.campaign}) "
                f"crashed: {self.detail}")


class SpecTimeout(SweepError):
    """An attempt exceeded its wall-clock deadline and was killed.

    Wall-clock, not simulated time — a deadline miss usually means a
    swamped machine rather than a broken spec, which is why timeouts
    are retried (bounded) like crashes.
    """

    def __init__(self, spec: CampaignSpec, timeout_s: float):
        super().__init__(spec, timeout_s)
        self.spec = spec
        self.spec_hash = spec.spec_hash()
        self.timeout_s = timeout_s

    def __str__(self) -> str:
        return (f"spec {self.spec_hash[:12]} ({self.spec.deployment} "
                f"{self.spec.campaign}) exceeded its {self.timeout_s:g}s "
                f"wall-clock deadline")


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded self-chaos: SIGKILL our own workers mid-spec.

    The decision to kill attempt ``a`` of spec ``i`` is drawn from
    ``Random(f"chaos:{seed}:{i}:{a}")`` — fully deterministic, so a
    chaos test can assert exact recovery behaviour.  ``max_kills_per_spec``
    bounds the kills below the runner's restart budget so every spec
    eventually completes.
    """

    kill_probability: float = 1.0
    kill_after_s: float = 0.05
    max_kills_per_spec: int = 1
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.kill_probability <= 1.0:
            raise ValueError("kill_probability must lie in [0, 1]")
        if self.kill_after_s < 0:
            raise ValueError("kill_after_s must be non-negative")
        if self.max_kills_per_spec < 0:
            raise ValueError("max_kills_per_spec must be non-negative")

    def should_kill(self, index: int, attempt: int,
                    kills_so_far: int) -> bool:
        if kills_so_far >= self.max_kills_per_spec:
            return False
        stream = random.Random(f"chaos:{self.seed}:{index}:{attempt}")
        return stream.random() < self.kill_probability


@dataclass
class SpecFailure:
    """One spec that exhausted supervision: its typed terminal error."""

    index: int
    spec: CampaignSpec
    error: SweepError
    attempts: int

    @property
    def kind(self) -> str:
        return type(self.error).__name__

    def __str__(self) -> str:
        return (f"[{self.kind} after {self.attempts} "
                f"attempt{'s' if self.attempts != 1 else ''}] {self.error}")


@dataclass
class PartialSweepResult:
    """A finished sweep, failures included instead of raised away.

    ``outcomes`` is in spec order with ``None`` holes where a spec
    failed terminally; ``failures`` explains each hole.  Completed
    outcomes are never discarded — they are already in the journal and
    cache by the time this object exists.
    """

    outcomes: List[Optional[CampaignOutcome]]
    failures: List[SpecFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def completed(self) -> List[CampaignOutcome]:
        return [outcome for outcome in self.outcomes if outcome is not None]

    def raise_if_failed(self) -> List[CampaignOutcome]:
        """``outcomes`` when clean; raises the first failure otherwise."""
        if self.failures:
            raise self.failures[0].error
        return self.outcomes  # type: ignore[return-value]


# -- worker side -------------------------------------------------------------------


def _worker_main(conn, heartbeat, spec: CampaignSpec,
                 heartbeat_interval_s: float) -> None:
    """Run one spec in a child process, beating while it works.

    SIGINT is ignored here: a terminal Ctrl-C reaches the whole process
    group, and shutdown (drain pipes, then kill) is the supervisor's
    job, not each worker's.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            stop.wait(heartbeat_interval_s)

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        try:
            outcome = execute_spec(spec)
        except BaseException as error:
            conn.send(("error", f"{type(error).__name__}: {error}",
                       traceback.format_exc()))
        else:
            conn.send(("ok", outcome))
    finally:
        stop.set()
        conn.close()


class _Task:
    """A spec awaiting (re)execution."""

    __slots__ = ("index", "spec", "attempt", "not_before")

    def __init__(self, index: int, spec: CampaignSpec,
                 attempt: int = 1, not_before: float = 0.0):
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.not_before = not_before


class _Worker:
    """Supervisor-side bookkeeping for one live worker process."""

    __slots__ = ("task", "process", "conn", "heartbeat", "started",
                 "deadline", "kill_at")

    def __init__(self, task: _Task, process, conn, heartbeat,
                 deadline: Optional[float], kill_at: Optional[float]):
        self.task = task
        self.process = process
        self.conn = conn
        self.heartbeat = heartbeat
        self.started = time.monotonic()
        self.deadline = deadline
        self.kill_at = kill_at


class _PoolUnavailable(Exception):
    """Worker processes cannot be started; use the in-process path."""


# -- the supervisor ----------------------------------------------------------------


class SupervisedRunner:
    """Fault-tolerant drop-in for :class:`ParallelRunner`.

    ``run`` returns a :class:`PartialSweepResult` instead of a bare
    outcome list; ``run(...).raise_if_failed()`` recovers the strict
    behaviour.  Everything a completed worker reports is journaled and
    cached immediately — there is no end-of-sweep flush to lose.
    """

    def __init__(self, workers: Optional[int] = None, cache: Any = None,
                 journal: Optional[Union[str, Path, SweepJournal]] = None,
                 spec_timeout_s: Optional[float] = None,
                 max_restarts: int = 2,
                 backoff_base_s: float = 0.25,
                 backoff_cap_s: float = 5.0,
                 stall_timeout_s: Optional[float] = 30.0,
                 chaos: Optional[ChaosPlan] = None,
                 poll_interval_s: float = 0.05):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be positive")
        if spec_timeout_s is not None and spec_timeout_s <= 0:
            raise ValueError("spec_timeout_s must be positive (or None)")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff must be non-negative")
        self.workers = workers
        self.cache = cache
        if journal is not None and not isinstance(journal, SweepJournal):
            journal = SweepJournal(journal)
        self.journal = journal
        self.spec_timeout_s = spec_timeout_s
        self.max_restarts = max_restarts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.stall_timeout_s = stall_timeout_s or None
        self.chaos = chaos
        self.poll_interval_s = poll_interval_s
        self._interrupted: Optional[int] = None
        self._interrupt_count = 0
        self._previous_handlers: Dict[int, Any] = {}

    # -- public entry points ----------------------------------------------------

    def run(self, specs: Sequence[CampaignSpec],
            argv: Optional[Sequence[str]] = None,
            resume: bool = True) -> PartialSweepResult:
        """Execute ``specs`` under supervision; never raises away
        completed work (SIGINT/SIGTERM excepted, and even then the
        journal already holds every completed outcome)."""
        specs = list(specs)
        outcomes: List[Optional[CampaignOutcome]] = [None] * len(specs)
        failures: List[SpecFailure] = []

        if self.journal is not None:
            self.journal.create_or_open(specs, argv=argv, resume=resume)
            # Journal and cache mirror each other: journaled outcomes
            # seed the cache (below, cache hits are journaled), so after
            # a resume either store alone can replay the whole sweep.
            for index, outcome in self.journal.completed(specs).items():
                outcomes[index] = outcome
                if self.cache is not None:
                    self.cache.put(outcome.spec, outcome)

        pending: Deque[_Task] = deque()
        for index, spec in enumerate(specs):
            if outcomes[index] is not None:
                continue
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                hit.cached = True
                outcomes[index] = hit
                if self.journal is not None:
                    self.journal.record(index, hit)
            else:
                pending.append(_Task(index, spec))

        if pending:
            self._install_signal_handlers()
            try:
                try:
                    self._run_processes(pending, outcomes, failures)
                except _PoolUnavailable:
                    self._run_inline(pending, outcomes, failures)
            finally:
                self._restore_signal_handlers()
            if self._interrupted is not None:
                raise KeyboardInterrupt(
                    f"sweep interrupted by signal {self._interrupted}; "
                    f"completed outcomes are journaled")

        failures.sort(key=lambda failure: failure.index)
        return PartialSweepResult(outcomes=outcomes, failures=failures)

    def resume(self, argv: Optional[Sequence[str]] = None,
               ) -> PartialSweepResult:
        """Finish a journaled sweep using the manifest's own spec list."""
        if self.journal is None:
            raise ValueError("resume() needs a journal")
        manifest = self.journal.open()
        return self.run(manifest.specs(), argv=argv)

    # -- completion plumbing ----------------------------------------------------

    def _complete(self, index: int, outcome: CampaignOutcome,
                  outcomes: List[Optional[CampaignOutcome]]) -> None:
        """Flush one finished spec everywhere, the moment it finishes."""
        outcomes[index] = outcome
        if self.journal is not None:
            self.journal.record(index, outcome)
        if self.cache is not None:
            self.cache.put(outcome.spec, outcome)

    def _retry_or_fail(self, task: _Task, error: SweepError,
                       pending: Deque[_Task],
                       failures: List[SpecFailure]) -> None:
        if task.attempt <= self.max_restarts:
            delay = min(self.backoff_cap_s,
                        self.backoff_base_s * (2 ** (task.attempt - 1)))
            pending.append(_Task(task.index, task.spec,
                                 attempt=task.attempt + 1,
                                 not_before=time.monotonic() + delay))
        else:
            failures.append(SpecFailure(index=task.index, spec=task.spec,
                                        error=error,
                                        attempts=task.attempt))

    # -- supervised process execution -------------------------------------------

    def _run_processes(self, pending: Deque[_Task],
                       outcomes: List[Optional[CampaignOutcome]],
                       failures: List[SpecFailure]) -> None:
        try:
            _prewarm_workloads([task.spec for task in pending])
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
        except Exception as error:
            raise _PoolUnavailable(str(error)) from error

        active: List[_Worker] = []
        kills: Dict[int, int] = {}
        launched_any = False
        try:
            while pending or active:
                if self._interrupted is not None:
                    self._drain_and_stop(active, outcomes)
                    return
                now = time.monotonic()
                while pending and len(active) < self.workers:
                    task = self._pop_eligible(pending, now)
                    if task is None:
                        break
                    try:
                        active.append(
                            self._launch(context, task, kills))
                        launched_any = True
                    except (OSError, ValueError, AttributeError,
                            ImportError) as error:
                        if launched_any:
                            # Mid-sweep launch failure: treat as a
                            # crash of this attempt, keep supervising.
                            self._retry_or_fail(
                                task,
                                WorkerCrash(task.spec,
                                            f"launch failed: {error}"),
                                pending, failures)
                        else:
                            # Nothing launched yet: the pool is unusable.
                            # Re-queue this task first — it was already
                            # popped, and the inline path only sees what
                            # is still in the deque.
                            pending.appendleft(task)
                            raise _PoolUnavailable(str(error)) from error
                self._reap(active, pending, outcomes, failures, kills)
        finally:
            for worker in active:
                self._kill(worker)
                self._finish(worker)

    def _pop_eligible(self, pending: Deque[_Task],
                      now: float) -> Optional[_Task]:
        for _ in range(len(pending)):
            task = pending.popleft()
            if task.not_before <= now:
                return task
            pending.append(task)
        return None

    def _launch(self, context, task: _Task,
                kills: Dict[int, int]) -> _Worker:
        parent_conn, child_conn = context.Pipe(duplex=False)
        heartbeat = context.Value("d", time.monotonic())
        process = context.Process(
            target=_worker_main,
            args=(child_conn, heartbeat, task.spec, HEARTBEAT_INTERVAL_S),
            daemon=True)
        process.start()
        child_conn.close()
        now = time.monotonic()
        deadline = (now + self.spec_timeout_s
                    if self.spec_timeout_s is not None else None)
        kill_at = None
        if self.chaos is not None and self.chaos.should_kill(
                task.index, task.attempt, kills.get(task.index, 0)):
            kill_at = now + self.chaos.kill_after_s
        return _Worker(task, process, parent_conn, heartbeat,
                       deadline, kill_at)

    def _reap(self, active: List[_Worker], pending: Deque[_Task],
              outcomes: List[Optional[CampaignOutcome]],
              failures: List[SpecFailure],
              kills: Dict[int, int]) -> None:
        if not active:
            time.sleep(self.poll_interval_s)
            return
        try:
            ready = set(_connection_wait(
                [worker.conn for worker in active],
                timeout=self.poll_interval_s))
        except OSError:
            ready = set()
        now = time.monotonic()
        for worker in list(active):
            task = worker.task
            if worker.conn in ready:
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    message = None
                active.remove(worker)
                self._finish(worker)
                if message is None:
                    exitcode = worker.process.exitcode
                    self._retry_or_fail(
                        task,
                        WorkerCrash(task.spec,
                                    f"died without a result "
                                    f"(exitcode {exitcode})"),
                        pending, failures)
                elif message[0] == "ok":
                    self._complete(task.index, message[1], outcomes)
                else:
                    failures.append(SpecFailure(
                        index=task.index, spec=task.spec,
                        error=SpecExecutionError(task.spec, message[1],
                                                 message[2]),
                        attempts=task.attempt))
                continue
            if worker.kill_at is not None and now >= worker.kill_at:
                worker.kill_at = None
                kills[task.index] = kills.get(task.index, 0) + 1
                self._kill(worker)
                continue   # death surfaces through the pipe next round
            if worker.deadline is not None and now >= worker.deadline:
                active.remove(worker)
                self._kill(worker)
                self._finish(worker)
                self._retry_or_fail(
                    task, SpecTimeout(task.spec, self.spec_timeout_s),
                    pending, failures)
                continue
            if self.stall_timeout_s is not None and \
                    now - worker.heartbeat.value > self.stall_timeout_s:
                active.remove(worker)
                self._kill(worker)
                self._finish(worker)
                self._retry_or_fail(
                    task,
                    WorkerCrash(task.spec,
                                f"heartbeat stalled for more than "
                                f"{self.stall_timeout_s:g}s"),
                    pending, failures)

    def _drain_and_stop(self, active: List[_Worker],
                        outcomes: List[Optional[CampaignOutcome]]) -> None:
        """Signal path: flush every already-completed result, then kill.

        Workers that finished before the signal have their outcome
        sitting in the pipe; journal those.  Workers still mid-spec are
        killed — their specs stay missing and resume re-runs them.  A
        drained *error* is reported to stderr: the failure is
        deterministic, so resume will only reproduce it, and the user
        should learn about the broken spec before re-running the sweep.
        """
        for worker in active:
            try:
                while worker.conn.poll(0):
                    message = worker.conn.recv()
                    if not message:
                        continue
                    if message[0] == "ok":
                        self._complete(worker.task.index, message[1],
                                       outcomes)
                    else:
                        spec = worker.task.spec
                        print(f"spec {spec.spec_hash()[:12]} "
                              f"({spec.deployment} {spec.campaign}) "
                              f"failed before the interrupt and will "
                              f"fail again on resume: {message[1]}",
                              file=sys.stderr)
            except (EOFError, OSError):
                pass
        for worker in active:
            self._kill(worker)
            self._finish(worker)
        active.clear()

    def _kill(self, worker: _Worker) -> None:
        try:
            if worker.process.is_alive():
                worker.process.kill()
        except (OSError, AttributeError, ValueError):
            pass

    def _finish(self, worker: _Worker) -> None:
        try:
            worker.process.join(timeout=5.0)
        except (OSError, AssertionError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    # -- in-process degradation -------------------------------------------------

    def _run_inline(self, pending: Deque[_Task],
                    outcomes: List[Optional[CampaignOutcome]],
                    failures: List[SpecFailure]) -> None:
        """No worker processes available: execute specs in this process.

        Crash isolation and deadlines are impossible here, but typed
        failures, immediate journaling and signal-safe stop still hold.
        """
        while pending:
            if self._interrupted is not None:
                return
            task = pending.popleft()
            try:
                outcome = execute_spec(task.spec)
            except Exception as error:
                failures.append(SpecFailure(
                    index=task.index, spec=task.spec,
                    error=SpecExecutionError(
                        task.spec, f"{type(error).__name__}: {error}",
                        traceback.format_exc(), cause=error),
                    attempts=task.attempt))
                continue
            self._complete(task.index, outcome, outcomes)

    # -- signals ----------------------------------------------------------------

    def _install_signal_handlers(self) -> None:
        self._interrupted = None
        self._interrupt_count = 0
        self._previous_handlers = {}
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous_handlers[signum] = signal.signal(
                    signum, self._on_signal)
            except (ValueError, OSError):
                pass

    def _restore_signal_handlers(self) -> None:
        for signum, handler in self._previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        self._previous_handlers = {}

    def _on_signal(self, signum, frame) -> None:
        self._interrupted = signum
        self._interrupt_count += 1
        if self._interrupt_count >= 2:
            # Second signal: the user means *now*.  The journal already
            # holds everything completed before the first signal.
            raise KeyboardInterrupt
