"""Checkpointed sweeps: an append-only journal with deterministic resume.

Long multi-configuration sweeps — the paper's hundred-iteration
campaigns, the ROADMAP's 10M-request overload runs — are too expensive
to lose to a worker crash or a Ctrl-C.  Because every campaign is a
deterministic function of its :class:`~repro.core.parallel.CampaignSpec`
(the property the parallel engine and result cache are built on), a
killed sweep never needs to start over: re-run only the specs whose
outcomes were not yet journaled and the merged result is bit-identical
to an uninterrupted run.

A :class:`SweepJournal` is a directory::

    journal/
      manifest.json            # the sweep: ordered specs + their hashes
      entries/00003-3fb2c9d1a0e7.json   # one completed outcome
      quarantine/...           # checksum-failed documents, moved aside

* The **manifest** freezes the sweep's identity: the ordered spec list
  (canonical dicts plus spec/calibration hashes and the cache key of
  each spec), the package version, and optionally the CLI argv that
  created it (what ``repro resume <journal>`` re-dispatches).
* **Entries** are append-only — a sweep only ever adds completed
  outcomes.  Every write is atomic (unique tmp file + ``os.replace``)
  and carries a content checksum of its payload, so a torn write from a
  kill -9 is *detected* on the next read, quarantined, and simply
  recomputed: corruption costs one spec, never the sweep.
* **Resume** loads the checksum-verified entries, cross-checks each
  against the manifest (position *and* cache key must agree), and
  reports what is missing.  The supervised runner then executes only
  the missing specs.

The journal deliberately reuses the cache's document shape
(:func:`repro.core.persistence.outcome_to_dict`), so a journal entry is
exactly as replayable as a cache hit — and exactly as bit-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro import __version__
from repro.core.cache import cache_key, quarantine, write_atomic
from repro.core.parallel import CampaignOutcome, CampaignSpec
from repro.core.persistence import (
    outcome_from_dict,
    outcome_to_dict,
    payload_checksum,
    spec_from_dict,
)

FORMAT_VERSION = 1


class JournalError(Exception):
    """The journal cannot serve this sweep (missing, foreign, stale)."""


class SweepManifest:
    """The parsed, validated ``manifest.json`` of a sweep journal."""

    def __init__(self, document: Dict[str, Any]):
        if document.get("kind") != "sweep-manifest":
            raise JournalError(
                f"not a sweep manifest: kind={document.get('kind')!r}")
        if document.get("format_version") != FORMAT_VERSION:
            raise JournalError(
                f"unsupported manifest format "
                f"{document.get('format_version')!r}")
        self.document = document

    @property
    def keys(self) -> List[str]:
        """The ordered cache keys of every spec in the sweep."""
        return [entry["key"] for entry in self.document["specs"]]

    @property
    def argv(self) -> Optional[List[str]]:
        """The CLI argv that created this journal, when recorded."""
        argv = self.document.get("argv")
        return list(argv) if argv is not None else None

    @property
    def package_version(self) -> str:
        return self.document["package_version"]

    def specs(self) -> List[CampaignSpec]:
        """Rebuild the sweep's specs from their canonical dicts.

        Hash-exact: each rebuilt spec is verified against the spec hash
        recorded at creation time, so a manifest written by a different
        package state cannot silently resume into different campaigns.
        """
        specs = []
        for index, entry in enumerate(self.document["specs"]):
            spec = spec_from_dict(entry["spec"])
            if spec.spec_hash() != entry["spec_hash"]:
                raise JournalError(
                    f"manifest spec #{index} no longer reproduces its "
                    f"recorded hash {entry['spec_hash'][:12]} — the "
                    f"package changed under the journal; re-run the "
                    f"sweep from scratch")
            specs.append(spec)
        return specs


class SweepJournal:
    """Crash-safe progress record for one sweep over a list of specs."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- layout -----------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def entries_dir(self) -> Path:
        return self.root / "entries"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    def _entry_path(self, index: int, key: str) -> Path:
        return self.entries_dir / f"{index:05d}-{key[:12]}.json"

    # -- manifest ---------------------------------------------------------------

    def create(self, specs: Sequence[CampaignSpec],
               argv: Optional[Sequence[str]] = None) -> SweepManifest:
        """Freeze the sweep's identity; atomic, refuses to overwrite."""
        if self.exists():
            raise JournalError(
                f"journal at {self.root} already holds a manifest; "
                f"open() it to resume or choose a fresh path")
        document = {
            "format_version": FORMAT_VERSION,
            "kind": "sweep-manifest",
            "package_version": __version__,
            "argv": list(argv) if argv is not None else None,
            "specs": [{
                "key": cache_key(spec),
                "spec_hash": spec.spec_hash(),
                "calibration_hash": spec.calibration_hash(),
                "spec": spec.canonical(),
            } for spec in specs],
        }
        write_atomic(self.manifest_path,
                     json.dumps(document, indent=2, default=repr))
        return SweepManifest(document)

    def open(self) -> SweepManifest:
        """Load and validate the manifest of an existing journal."""
        try:
            document = json.loads(self.manifest_path.read_text())
        except OSError as error:
            raise JournalError(
                f"no sweep journal at {self.root}: {error}") from error
        except ValueError as error:
            raise JournalError(
                f"unreadable manifest at {self.manifest_path}: "
                f"{error}") from error
        manifest = SweepManifest(document)
        if manifest.package_version != __version__:
            raise JournalError(
                f"journal was written by repro "
                f"{manifest.package_version}, this is {__version__}; "
                f"a resumed sweep would not be bit-identical — re-run "
                f"from scratch")
        return manifest

    def create_or_open(self, specs: Sequence[CampaignSpec],
                       argv: Optional[Sequence[str]] = None,
                       resume: bool = True) -> SweepManifest:
        """Create a fresh journal, or validate + reuse a matching one.

        An existing journal must describe *exactly* this sweep (same
        specs, same order, same effective calibrations); anything else
        raises rather than mixing two sweeps' outcomes.  With
        ``resume=False`` an existing journal is refused outright.
        """
        if not self.exists():
            return self.create(specs, argv=argv)
        if not resume:
            raise JournalError(
                f"journal at {self.root} already exists; pass --resume "
                f"to continue it, or point --journal at a fresh path")
        manifest = self.open()
        expected = [cache_key(spec) for spec in specs]
        if manifest.keys != expected:
            raise JournalError(
                f"journal at {self.root} describes a different sweep "
                f"({len(manifest.keys)} specs vs {len(expected)} "
                f"requested, or differing spec/calibration hashes); "
                f"refusing to mix results")
        return manifest

    # -- entries ----------------------------------------------------------------

    def record(self, index: int, outcome: CampaignOutcome) -> Path:
        """Append one completed outcome (atomic write + checksum)."""
        key = cache_key(outcome.spec)
        payload = outcome_to_dict(outcome)
        document = {
            "format_version": FORMAT_VERSION,
            "kind": "journal-entry",
            "index": index,
            "key": key,
            "spec_hash": outcome.spec.spec_hash(),
            "checksum": payload_checksum(payload),
            "outcome": payload,
        }
        return write_atomic(self._entry_path(index, key),
                            json.dumps(document, default=repr))

    def completed(self,
                  specs: Optional[Sequence[CampaignSpec]] = None,
                  ) -> Dict[int, CampaignOutcome]:
        """Checksum-verified outcomes by manifest position.

        Corrupted entries (torn writes, bit rot, entries that disagree
        with the manifest) are moved to ``quarantine/`` and omitted —
        the resume path recomputes them.  ``specs`` may be passed to
        skip re-deriving them from the manifest.
        """
        manifest = self.open()
        if specs is None:
            specs = manifest.specs()
        keys = manifest.keys
        outcomes: Dict[int, CampaignOutcome] = {}
        if not self.entries_dir.is_dir():
            return outcomes
        for path in sorted(self.entries_dir.glob("*.json")):
            try:
                document = json.loads(path.read_text())
                if document.get("kind") != "journal-entry" or \
                        document.get("format_version") != FORMAT_VERSION:
                    raise ValueError("not a journal entry")
                index = document["index"]
                if not 0 <= index < len(keys) or \
                        document["key"] != keys[index]:
                    raise ValueError("entry disagrees with manifest")
                payload = document["outcome"]
                if document["checksum"] != payload_checksum(payload):
                    raise ValueError("checksum mismatch")
                outcome = outcome_from_dict(payload, specs[index])
                outcome.cached = True
            except (OSError, KeyError, TypeError, ValueError):
                quarantine(path, self.quarantine_dir)
                continue
            outcomes[index] = outcome
        return outcomes

    # -- progress ---------------------------------------------------------------

    def progress(self) -> str:
        """``"<done>/<total> specs journaled"`` for humans."""
        manifest = self.open()
        done = len(self.completed())
        return f"{done}/{len(manifest.keys)} specs journaled"

    def is_complete(self) -> bool:
        manifest = self.open()
        return set(self.completed()) == set(range(len(manifest.keys)))

    def outcomes(self) -> List[CampaignOutcome]:
        """Every outcome in sweep order (raises while incomplete)."""
        manifest = self.open()
        completed = self.completed()
        missing = [index for index in range(len(manifest.keys))
                   if index not in completed]
        if missing:
            raise JournalError(
                f"sweep incomplete: specs {missing} not journaled yet "
                f"(resume it with `repro resume {self.root}`)")
        return [completed[index] for index in range(len(manifest.keys))]

    def __repr__(self) -> str:
        state = "absent"
        if self.exists():
            try:
                state = self.progress()
            except JournalError:
                state = "unreadable"
        return f"SweepJournal(root={str(self.root)!r}, {state})"
