"""Resilience campaigns: SLO verdicts through correlated outages.

A resilience campaign drives a closed-loop workload straight through
injected outage windows (zone crashes, gray degradation, brownouts,
partitions — see :mod:`repro.platforms.faults`) with a client-side
:class:`~repro.core.mitigation.MitigationPolicy` in front of every
invoke, and asks the operator's questions: what availability did the
deployment actually deliver, how fast did it recover after each window
(MTTR), how much of the error budget burned, what did the mitigation
itself cost (hedge overspend GB-s, cost overhead vs an unmitigated
baseline), and did the p99/availability SLOs hold?

Like every campaign type, the outcome is a pure function of the
:class:`~repro.core.parallel.CampaignSpec`: bit-identical across the
serial runner, :class:`~repro.core.parallel.ParallelRunner` workers and
cache replay, and audit-clean under the invariant auditor.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from repro.core.costs import CostReport, cost_report
from repro.core.experiment import CampaignResult
from repro.core.metrics import breakdown_from_spans, percentile
from repro.core.mitigation import MitigationEngine, MitigationPolicy
from repro.core.testbed import Testbed

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.core.parallel import CampaignOutcome, CampaignSpec


@dataclass(frozen=True)
class ResilienceSummary:
    """One deployment's report card for surviving correlated outages."""

    deployment: str
    platform: str
    total_runs: int
    successes: int
    failures: int
    #: measured fraction of measured iterations that succeeded
    availability: float
    #: same workload, no faults, no mitigation (sanity anchor)
    baseline_availability: float
    #: failure rate / SLO-permitted failure rate (1.0 = budget gone)
    error_budget_burn: float
    #: the targets and their verdicts
    slo_availability: float
    slo_p99_s: float
    slo_availability_met: bool
    slo_p99_met: bool
    #: materialized outage windows, absolute ``(start, end)`` seconds
    outage_windows: Tuple[Tuple[float, float], ...]
    #: per-window time from outage start to the next observed success
    #: (censored at end-of-campaign when service never recovered)
    recovery_times_s: Tuple[float, ...]
    mean_recovery_time_s: float
    p50_latency_s: float
    p99_latency_s: float
    baseline_p99_latency_s: float
    #: mitigation accounting
    hedges_launched: int
    hedge_wins: int
    hedges_cancelled: int
    hedge_overspend_gb_s: float
    breaker_opens: int
    short_circuits: int
    deadline_abandons: int
    request_timeouts: int
    #: chaos accounting
    outages: int
    dropped_messages: int
    browned_out_messages: int
    gray_errors: int
    cost_per_run: float
    baseline_cost_per_run: float
    #: mitigated faulted cost / unmitigated fault-free cost
    mitigation_cost_overhead: float

    @property
    def success_rate(self) -> float:
        if self.total_runs == 0:
            return 0.0
        return self.successes / self.total_runs

    @property
    def slo_met(self) -> bool:
        return self.slo_availability_met and self.slo_p99_met


def _run_pass(spec: "CampaignSpec", fault_plan, policy: MitigationPolicy,
              audit: bool = False):
    """One mitigated campaign pass, tolerant of failed runs.

    Same settle/think cadence and breakdown windows as the reliability
    executor, but every invoke goes through one persistent
    :class:`MitigationEngine` (breaker state and latency estimates
    carry across iterations, like a real client library's).  Returns
    ``(testbed, campaign, cost, failures, engine, success_times)``
    where ``success_times`` are absolute completion times of *every*
    successful run, warmup included — the MTTR evidence.
    """
    from repro.core.deployments.base import Deployment
    from repro.core.overload import classify_error
    Deployment._run_ids = itertools.count(1)

    testbed = Testbed(seed=spec.seed, calibrations=spec.calibrations(),
                      fault_plan=fault_plan, audit=audit)
    deployment = spec.build_deployment(testbed)
    deployment.deploy()
    auditor = testbed.auditor
    telemetry = deployment.stack.telemetry
    campaign = CampaignResult(deployment=deployment.name)
    kwargs = dict(spec.invoke_kwargs)
    engine = MitigationEngine(
        policy=policy, env=testbed.env, streams=testbed.streams,
        label=f"resilience.{spec.deployment}",
        gb_s_probe=lambda: sum(stack.billing.total_gb_s()
                               for stack in testbed.stacks.values()))
    failures = 0
    success_times: List[float] = []

    for index in range(spec.warmup + spec.iterations):
        window_start = testbed.now
        span_cursor = len(telemetry.spans)
        run = None
        if auditor is not None:
            auditor.note_arrival()
        try:
            run = testbed.run(engine.call(
                lambda: deployment.invoke(**kwargs)))
            success_times.append(testbed.now)
            if auditor is not None:
                auditor.note_outcome("succeeded")
        except Exception as error:  # noqa: BLE001 - the failure IS the measurement
            if auditor is not None:
                auditor.note_outcome(classify_error(error))
            if index >= spec.warmup:
                failures += 1
        testbed.advance(spec.settle_time_s)
        if index >= spec.warmup and run is not None:
            campaign.runs.append(run)
            campaign.breakdowns.append(breakdown_from_spans(
                telemetry, since=window_start, until=testbed.now,
                start_hint=span_cursor))
        testbed.advance(spec.think_time_s)

    cost = cost_report(deployment, per_runs=spec.warmup + spec.iterations)
    return testbed, campaign, cost, failures, engine, success_times


def _recovery_times(windows, success_times, end_of_run: float
                    ) -> Tuple[float, ...]:
    """Per-window MTTR: outage start to the next observed success.

    Windows that begin after the campaign ended produce no evidence;
    windows the service never recovered from are censored at the end of
    the run (a lower bound, like a real incident still open at report
    time).
    """
    times = []
    for start, _end in windows:
        if start >= end_of_run:
            continue
        recovered = next((t for t in success_times if t >= start), None)
        times.append((recovered if recovered is not None else end_of_run)
                     - start)
    return tuple(times)


def _ratio(value: float, baseline: float) -> float:
    if baseline <= 0:
        return 1.0 if value <= 0 else float("inf")
    return value / baseline


def execute_resilience_spec(spec: "CampaignSpec") -> "CampaignOutcome":
    """Run the mitigated outage pass and its clean baseline; summarize.

    The baseline pass runs fault-free and mitigation-free (bar the hard
    request timeout, which also backstops partition-dropped messages in
    the faulted pass), so the summary's overhead ratios isolate what
    the chaos *plus its mitigation* cost.  Only the faulted pass is
    audited, like the reliability executor.
    """
    from repro.core import audit as audit_mod
    from repro.core.parallel import CampaignOutcome

    plan = spec.fault_plan_obj()
    policy = spec.mitigation_obj()
    backstop = MitigationPolicy(request_timeout_s=policy.request_timeout_s)

    testbed, campaign, cost, failures, engine, success_times = _run_pass(
        spec, plan, policy, audit=audit_mod.enabled_for(spec.audit))
    (_, baseline_campaign, baseline_cost, baseline_failures, _,
     _) = _run_pass(spec, None, backstop)

    faults = testbed.faults
    windows = faults.outage_windows if faults else ()
    recovery = _recovery_times(windows, success_times, testbed.now)
    latencies = campaign.latencies
    baseline_latencies = baseline_campaign.latencies
    p50 = percentile(latencies, 50) if latencies else 0.0
    p99 = percentile(latencies, 99) if latencies else 0.0
    base_p99 = (percentile(baseline_latencies, 99)
                if baseline_latencies else 0.0)

    iterations = spec.iterations
    availability = ((iterations - failures) / iterations
                    if iterations else 0.0)
    baseline_availability = ((iterations - baseline_failures) / iterations
                             if iterations else 0.0)
    failure_rate = failures / iterations if iterations else 0.0
    budget = 1.0 - spec.slo_availability
    burn = (failure_rate / budget if budget > 0
            else (0.0 if failures == 0 else float("inf")))
    slo_availability_met = availability >= spec.slo_availability
    slo_p99_met = spec.slo_p99_s <= 0 or p99 <= spec.slo_p99_s

    summary = ResilienceSummary(
        deployment=spec.deployment,
        platform=cost.platform,
        total_runs=iterations,
        successes=len(campaign.runs),
        failures=failures,
        availability=availability,
        baseline_availability=baseline_availability,
        error_budget_burn=burn,
        slo_availability=spec.slo_availability,
        slo_p99_s=spec.slo_p99_s,
        slo_availability_met=slo_availability_met,
        slo_p99_met=slo_p99_met,
        outage_windows=tuple(windows),
        recovery_times_s=recovery,
        mean_recovery_time_s=(sum(recovery) / len(recovery)
                              if recovery else 0.0),
        p50_latency_s=p50,
        p99_latency_s=p99,
        baseline_p99_latency_s=base_p99,
        hedges_launched=engine.hedges_launched,
        hedge_wins=engine.hedge_wins,
        hedges_cancelled=engine.hedges_cancelled,
        hedge_overspend_gb_s=engine.hedge_overspend_gb_s,
        breaker_opens=engine.breaker_opens,
        short_circuits=engine.short_circuits,
        deadline_abandons=engine.deadline_abandons,
        request_timeouts=engine.request_timeouts,
        outages=len(windows),
        dropped_messages=faults.dropped_messages if faults else 0,
        browned_out_messages=faults.browned_out_messages if faults else 0,
        gray_errors=faults.gray_errors if faults else 0,
        cost_per_run=cost.total,
        baseline_cost_per_run=baseline_cost.total,
        mitigation_cost_overhead=_ratio(cost.total, baseline_cost.total))

    report = None
    if testbed.auditor is not None:
        report = testbed.auditor.finalize()
        if audit_mod.RAISE_ON_VIOLATION:
            report.raise_if_violations(spec=spec)
    return CampaignOutcome(spec=spec, campaign=campaign, cost=cost,
                           resilience=summary, audit=report)
