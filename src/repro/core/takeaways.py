"""Auto-evaluated key takeaways — the paper's §V bullets as live checks.

Each of the paper's "Key Takeaways" bullets is re-derived from fresh
measurements on the simulated testbed and reported as a verdict with the
evidence behind it.  ``python -m repro takeaways`` prints the scorecard;
the benchmark suite asserts each verdict individually — this module is
the one-screen summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.costs import cost_report
from repro.core.deployments.base import Deployment
from repro.core.experiment import ExperimentRunner
from repro.core.testbed import Testbed


@dataclass(frozen=True)
class Takeaway:
    """One verdict: the paper's claim, whether it held, and the numbers."""

    section: str
    claim: str
    holds: bool
    evidence: str


def _campaigns(scale: str, iterations: int, seed: int,
               names: List[str]) -> Dict[str, tuple]:
    from repro.core.deployments import build_ml_training_deployments
    runner = ExperimentRunner(think_time_s=30.0, settle_time_s=5.0)
    out = {}
    for name in names:
        testbed = Testbed(seed=seed)
        deployment = build_ml_training_deployments(testbed, scale)[name]
        campaign = runner.run_campaign(deployment, iterations=iterations,
                                       warmup=1)
        out[name] = (campaign, deployment, testbed)
    return out


def evaluate_ml_takeaways(scale: str = "small", iterations: int = 10,
                          seed: int = 0) -> List[Takeaway]:
    """The §V-A (ML training) key-takeaway bullets."""
    data = _campaigns(scale, iterations, seed,
                      ["AWS-Lambda", "AWS-Step", "Az-Func", "Az-Dorch",
                       "Az-Dent"])
    reports = {name: cost_report(deployment, per_runs=iterations + 1)
               for name, (_, deployment, _) in data.items()}
    takeaways = []

    # 1. Durable excels in latency but costs more (GB-s and transactions).
    dorch = reports["Az-Dorch"]
    func = reports["Az-Func"]
    holds = (dorch.gb_s > func.gb_s
             and dorch.transaction_cost > func.transaction_cost)
    takeaways.append(Takeaway(
        "V-A", "Azure Durable imposes additional GB-s and transaction "
               "cost over the stateless function",
        holds,
        f"GB-s/run {dorch.gb_s:.1f} vs {func.gb_s:.1f}; "
        f"tx $/run {dorch.transaction_cost:.2e} vs "
        f"{func.transaction_cost:.2e}"))

    # 2. AWS-Step latency comparable to AWS-Lambda.
    step = data["AWS-Step"][0].stats().median
    lam = data["AWS-Lambda"][0].stats().median
    holds = step < lam * 1.25
    takeaways.append(Takeaway(
        "V-A", "AWS Step shows comparable performance to AWS Lambda",
        holds, f"median {step:.1f}s vs {lam:.1f}s"))

    # 3. AWS charges nothing while idle; Azure durable keeps billing.
    _, _, azure_testbed = data["Az-Dorch"]
    azure_before = len(azure_testbed.azure.meter)
    azure_testbed.advance(3600.0)
    azure_idle = len(azure_testbed.azure.meter) - azure_before
    _, _, aws_testbed = data["AWS-Step"]
    aws_before = aws_testbed.aws.meter.count(service="stepfunctions")
    aws_testbed.advance(3600.0)
    aws_idle = (aws_testbed.aws.meter.count(service="stepfunctions")
                - aws_before)
    holds = azure_idle > 0 and aws_idle == 0
    takeaways.append(Takeaway(
        "V-A", "AWS's price model charges nothing while idle; Azure "
               "keeps accruing storage transactions",
        holds, f"idle hour: Azure {azure_idle:,} tx, AWS {aws_idle} "
               "transitions"))

    # 4. Entity operations run slower than the same logic in activities.
    dent_exec = data["Az-Dent"][0].p99_breakdown().execution_time
    dorch_exec = data["Az-Dorch"][0].p99_breakdown().execution_time
    holds = dent_exec > dorch_exec
    takeaways.append(Takeaway(
        "V-A", "running an operation in an entity is slower than the "
               "same operation in a stateless activity",
        holds, f"p99 execution {dent_exec:.1f}s (Dent) vs "
               f"{dorch_exec:.1f}s (Dorch)"))
    return takeaways


def evaluate_video_takeaways(seed: int = 0) -> List[Takeaway]:
    """The §V-B (video) key-takeaway bullets."""
    from repro.core.deployments import build_video_deployments
    takeaways = []

    def latency(name: str, workers: int) -> float:
        testbed = Testbed(seed=seed)
        deployment = build_video_deployments(testbed,
                                             n_workers=workers)[name]
        deployment.deploy()
        return testbed.run(deployment.invoke(n_workers=workers)).latency

    # 1. Azure durable resists scheduling parallel workers.
    azure_40 = latency("Az-Dorch", 40)
    azure_80 = latency("Az-Dorch", 80)
    aws_80 = latency("AWS-Step", 80)
    holds = azure_80 > azure_40 * 0.85 and azure_80 > 2 * aws_80
    takeaways.append(Takeaway(
        "V-B", "Azure durable shows resistance towards scheduling "
               "parallel workers (long-tail completion)",
        holds, f"Az-Dorch 40w={azure_40:.0f}s, 80w={azure_80:.0f}s; "
               f"AWS-Step 80w={aws_80:.0f}s"))

    # 2. Azure's transaction cost exceeds AWS's transition cost.
    costs = {}
    for name in ("AWS-Step", "Az-Dorch"):
        testbed = Testbed(seed=seed)
        deployment = build_video_deployments(testbed, n_workers=20)[name]
        deployment.deploy()
        testbed.run(deployment.invoke())
        testbed.advance(3600.0)   # an idle hour of polling for Azure
        costs[name] = cost_report(deployment)
    holds = (costs["Az-Dorch"].transaction_cost
             > costs["AWS-Step"].transaction_cost)
    takeaways.append(Takeaway(
        "V-B", "the cost of transitions in Azure durable exceeds the "
               "AWS state-machine transition cost",
        holds, f"${costs['Az-Dorch'].transaction_cost:.2e} vs "
               f"${costs['AWS-Step'].transaction_cost:.2e} "
               "(one run + one idle hour)"))

    # 3. Azure computation cost is lower than AWS's.
    holds = costs["Az-Dorch"].gb_s < costs["AWS-Step"].gb_s
    takeaways.append(Takeaway(
        "V-B", "Azure computation cost (GB-s) is lower than AWS's",
        holds, f"{costs['Az-Dorch'].gb_s:.0f} vs "
               f"{costs['AWS-Step'].gb_s:.0f} GB-s"))
    return takeaways


def render_takeaways(takeaways: List[Takeaway]) -> str:
    """A scorecard: one check/cross per claim with its evidence."""
    if not takeaways:
        raise ValueError("no takeaways to render")
    lines = []
    for takeaway in takeaways:
        mark = "[ok]" if takeaway.holds else "[??]"
        lines.append(f"{mark} ({takeaway.section}) {takeaway.claim}")
        lines.append(f"       {takeaway.evidence}")
    held = sum(1 for takeaway in takeaways if takeaway.holds)
    lines.append(f"\n{held}/{len(takeaways)} key takeaways reproduced")
    return "\n".join(lines)
