"""Deterministic campaign fuzzer: the spec space, searched by machine.

The repro's core claim — every campaign is a pure, bit-identical
function of its :class:`~repro.core.parallel.CampaignSpec` on every
execution path — is only as strong as the configurations it has been
checked at.  This module turns the invariant auditor from a spot-check
into a search:

* :class:`SpecGenerator` — draws *valid* specs from a seeded RNG
  stream: platform × workload × arrival model × calibration overrides
  (from each backend's :meth:`fuzz_calibration_space`) ×
  :class:`~repro.platforms.faults.FaultPlan` (including correlated
  outages) × :class:`~repro.core.mitigation.MitigationPolicy` ×
  overload knobs.  Weights are structured so deep fault/mitigation
  combinations (dedupe-off under duplication, gray outages, breaker +
  hedging stacks) are reachable; every draw is reproducible from
  ``(seed, index)`` alone.
* :func:`check_spec` — the differential oracle: executes one spec under
  the invariant auditor across the serial, pooled, cache-replay and
  persistence paths (plus a supervised cross-process reference when the
  session provides one) and asserts bit-identical outcome checksums,
  typed-exception parity, and spec round-trip exactness through
  :func:`~repro.core.persistence.spec_to_dict` /
  :func:`~repro.core.persistence.spec_from_dict`.
* :func:`shrink` — greedily minimizes a failing spec (drop fault
  entries, zero mitigation features, drop overrides, shrink counts and
  durations) while preserving the failure *fingerprint*, so the
  reported reproducer is the smallest spec that still fails the same
  way.
* :func:`write_repro` / :func:`read_repro` / :func:`replay_corpus` —
  checksummed repro documents (shaped like journal entries) collected
  in a regression corpus that ``repro fuzz replay`` and CI re-check, so
  every found bug stays fixed.
* :func:`run_fuzz` — a fuzz session: specs execute under
  :class:`~repro.core.supervise.SupervisedRunner` with an optional
  :class:`~repro.core.checkpoint.SweepJournal`, so fuzzing itself is
  crash-safe, SIGINT-drainable and resumable with the same journal
  plumbing the campaign commands use.  Same seed + budget ⇒ same specs,
  same verdicts, same corpus.

Fingerprints are deliberately *stable* strings (no spec-dependent
values), so the shrinker can require "still fails the same way" across
candidate specs and a corpus entry keeps meaning the same bug across
package versions.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.cache import ResultCache, write_atomic
from repro.core.checkpoint import SweepJournal
from repro.core.parallel import (
    ARRIVAL_KINDS,
    WORKLOAD_VARIANTS,
    CampaignOutcome,
    CampaignSpec,
    ParallelRunner,
    SpecExecutionError,
    execute_spec,
)
from repro.core.persistence import (
    SpecValidationError,
    outcome_from_dict,
    outcome_to_dict,
    payload_checksum,
    spec_from_dict,
    spec_to_dict,
)
from repro.core.supervise import SupervisedRunner

FORMAT_VERSION = 1

#: Environment variable gating seeded *planted* bugs (test harness for
#: the fuzzer itself).  ``REPRO_FUZZ_PLANT=dedupe`` perturbs the serial
#: path of any spec that disables completion dedupe while queue
#: duplication is active — a calibration-gated divergence the fuzzer
#: must find, shrink and replay.
PLANT_ENV = "REPRO_FUZZ_PLANT"


#: Which registered backend each variant runs on (for calibration
#: override draws).
VARIANT_BACKENDS: Dict[str, str] = {
    "AWS-Lambda": "aws", "AWS-Step": "aws",
    "Az-Func": "azure", "Az-Queue": "azure",
    "Az-Dorch": "azure", "Az-Dent": "azure",
    "GCP-Func": "gcp", "GCP-Flows": "gcp",
}

#: Differential paths the oracle compares, in report order.
PATHS = ("serial", "pool", "cache", "persistence")


class FuzzError(Exception):
    """A fuzz artifact (repro document, corpus entry) is unusable."""


# -- the generator -----------------------------------------------------------------


class SpecGenerator:
    """Valid :class:`CampaignSpec` draws from a seeded RNG stream.

    ``draw(index)`` is a pure function of ``(seed, index)``: each draw
    gets its own ``random.Random(f"fuzz:{seed}:{index}:{attempt}")``
    stream, so draws are independent of each other and of how many were
    made before.  Rarely, a drawn combination fails spec validation
    (e.g. an audited spec drawing a telemetry-killing override); the
    attempt salt deterministically re-draws until one validates.
    """

    #: bound on deterministic re-draws for one index
    MAX_ATTEMPTS = 25

    def __init__(self, seed: int):
        self.seed = seed

    def specs(self, budget: int) -> List[CampaignSpec]:
        """The first ``budget`` specs of this seed's stream."""
        return [self.draw(index) for index in range(budget)]

    def draw(self, index: int) -> CampaignSpec:
        last_error: Optional[Exception] = None
        for attempt in range(self.MAX_ATTEMPTS):
            stream = random.Random(
                f"fuzz:{self.seed}:{index}:{attempt}")
            try:
                return self._draw(stream)
            except (ValueError, KeyError) as error:
                last_error = error
        raise RuntimeError(
            f"no valid spec after {self.MAX_ATTEMPTS} attempts for "
            f"(seed={self.seed}, index={index}): {last_error}")

    # -- drawing ----------------------------------------------------------------

    def _draw(self, stream: random.Random) -> CampaignSpec:
        workload = self._weighted(stream, (("ml-training", 0.45),
                                           ("ml-inference", 0.25),
                                           ("video", 0.30)))
        deployment = stream.choice(WORKLOAD_VARIANTS[workload])
        campaign = self._weighted(stream, (("latency", 0.30),
                                           ("coldstart", 0.08),
                                           ("fanout", 0.07),
                                           ("reliability", 0.20),
                                           ("overload", 0.15),
                                           ("resilience", 0.20)))
        fields: Dict[str, Any] = {
            "deployment": deployment,
            "workload": workload,
            "scale": "small",
            "campaign": campaign,
            # Shared workload seed keeps the expensive dataset/model
            # memo hot across the whole session; behavioural diversity
            # comes from the testbed seed.
            "workload_seed": 0,
            "seed": stream.randrange(1000),
            "iterations": stream.randint(1, 3),
            "warmup": stream.randint(0, 1),
            "audit": True,
        }
        if workload == "video":
            fields["fanout"] = stream.choice((2, 3, 4))
        if campaign == "coldstart":
            fields["interval_s"] = 3600.0
            fields["days"] = stream.choice((0.125, 0.25))
        elif campaign == "fanout":
            fields["batch"] = stream.choice((0, 2))
        elif campaign == "overload":
            fields["arrival"] = stream.choice(ARRIVAL_KINDS)
            fields["arrival_rate_per_s"] = stream.choice((2.0, 5.0, 10.0))
            fields["horizon_s"] = stream.choice((5.0, 10.0, 20.0))
        if stream.random() < 0.25:
            fields["idle_window_s"] = stream.choice((300.0, 900.0))
        # Faults are the point: draw a plan often, more often for the
        # campaigns built to study them.
        fault_chance = 0.75 if campaign in ("reliability",
                                            "resilience") else 0.45
        if stream.random() < fault_chance:
            fields["fault_plan"] = self._draw_fault_plan(stream, campaign)
        if campaign == "resilience" and stream.random() < 0.6:
            fields["mitigation"] = self._draw_mitigation(stream)
        if stream.random() < 0.4:
            overrides = self._draw_overrides(
                stream, VARIANT_BACKENDS[deployment])
            if overrides:
                fields["calibration_overrides"] = overrides
        return CampaignSpec(**fields)

    def _draw_fault_plan(self, stream: random.Random,
                         campaign: str) -> Tuple[Tuple[str, Any], ...]:
        features = ("crash", "error", "straggler", "queue-delay",
                    "duplication", "retries", "outage")
        if campaign in ("latency", "coldstart", "fanout"):
            # run_campaign aborts on a failed run by design (the
            # tolerant executors are reliability/overload/resilience),
            # so these campaigns only draw faults the platforms absorb.
            features = ("straggler", "queue-delay", "duplication",
                        "retries")
        count = self._weighted(stream, ((1, 0.45), (2, 0.35), (3, 0.20)))
        chosen = stream.sample(features, count)
        items: Dict[str, Any] = {}
        for feature in sorted(chosen):
            if feature == "crash":
                items["crash_probability"] = stream.choice((0.1, 0.3))
            elif feature == "error":
                items["error_probability"] = stream.choice((0.1, 0.25))
            elif feature == "straggler":
                items["straggler_probability"] = 0.2
                factor = stream.choice((2.0, 4.0))
                if campaign in ("latency", "coldstart", "fanout"):
                    # A 4x straggler can push the longest functions past
                    # a platform timeout ceiling (GCP's 540s) — run-
                    # killing, which the intolerant campaigns can't
                    # absorb.  The draw still happens to keep the
                    # stream stable.
                    factor = 2.0
                items["straggler_factor"] = factor
            elif feature == "queue-delay":
                items["queue_delay_probability"] = 0.25
                items["queue_delay_s"] = stream.choice((1.0, 5.0))
            elif feature == "duplication":
                items["queue_duplication_probability"] = \
                    stream.choice((0.3, 0.6))
                # The deep combo the auditor exists for: duplicates
                # with the consumer-side dedupe switched off.
                if stream.random() < 0.4:
                    items["completion_dedupe"] = False
            elif feature == "retries":
                items["retry_max_attempts"] = stream.randint(2, 3)
                items["retry_interval_s"] = 1.0
            elif feature == "outage":
                start = stream.choice((5.0, 30.0, 120.0))
                duration = stream.choice((10.0, 60.0))
                items["outage_windows"] = ((start, duration),)
                items["outage_mode"] = stream.choice(("crash", "gray"))
                if items["outage_mode"] == "gray":
                    items["gray_latency_factor"] = 3.0
                    items["gray_error_probability"] = 0.2
                if stream.random() < 0.3:
                    items["brownout_delay_s"] = 5.0
                # Partition drops lose messages permanently; only the
                # resilience executor's hard request timeout backstops a
                # run stranded on one (reliability/overload would wait
                # forever).  The draw still happens so the stream — and
                # every (seed, index) spec after it — stays stable.
                if stream.random() < 0.3 and campaign == "resilience":
                    items["partition_drop_probability"] = 0.2
        return tuple(sorted(items.items()))

    def _draw_mitigation(self,
                         stream: random.Random) -> Tuple[Tuple[str, Any], ...]:
        items: Dict[str, Any] = {}
        if stream.random() < 0.6:
            items["breaker_failure_threshold"] = stream.choice((2, 3))
            items["breaker_recovery_timeout_s"] = 10.0
        if stream.random() < 0.5:
            items["hedge_after_s"] = stream.choice((1.0, 5.0))
            items["max_hedges"] = 1
        if stream.random() < 0.5:
            items["deadline_factor"] = 3.0
            items["deadline_min_s"] = 1.0
        return tuple(sorted(items.items()))

    def _draw_overrides(self, stream: random.Random,
                        backend_name: str) -> Tuple[Tuple[str, Any], ...]:
        from repro.platforms.backend import get_backend
        space = get_backend(backend_name).fuzz_calibration_space()
        if not space:
            return ()
        names = sorted(space)
        count = min(len(names), self._weighted(stream, ((1, 0.7),
                                                        (2, 0.3))))
        chosen = stream.sample(names, count)
        return tuple(sorted(
            (f"{backend_name}.{name}", stream.choice(space[name]))
            for name in chosen))

    @staticmethod
    def _weighted(stream: random.Random,
                  choices: Sequence[Tuple[Any, float]]) -> Any:
        total = sum(weight for _, weight in choices)
        point = stream.random() * total
        for value, weight in choices:
            point -= weight
            if point <= 0:
                return value
        return choices[-1][0]


# -- the differential oracle -------------------------------------------------------


@dataclass(frozen=True)
class PathResult:
    """One execution path's observation of a spec.

    Exactly one of ``checksum`` (the outcome payload checksum) and
    ``error`` (the normalized ``"ExcType: message"`` fingerprint) is
    set.
    """

    path: str
    checksum: Optional[str] = None
    error: Optional[str] = None


@dataclass
class FuzzVerdict:
    """The oracle's verdict for one spec: path results plus findings.

    ``findings`` are stable fingerprint strings; an empty tuple means
    every path agreed and every round trip was exact.
    """

    spec: CampaignSpec
    spec_hash: str
    paths: Tuple[PathResult, ...]
    findings: Tuple[str, ...]
    index: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.findings


def _error_fingerprint(error: BaseException) -> str:
    """Normalize any path's exception to ``"ExcType: message"``.

    :class:`SpecExecutionError` already carries exactly this string for
    the *inner* error (workers format it the same way), so serial and
    pooled failures compare equal when they are the same failure.
    """
    if isinstance(error, SpecExecutionError):
        return error.message
    return f"{type(error).__name__}: {error}"


def _finding_for_error(error: BaseException) -> str:
    """The stable finding fingerprint for a spec that failed all paths.

    Invariant violations name the broken invariants (stable across
    shrinking); everything else is a crash keyed by exception type.
    """
    from repro.core.audit import InvariantViolation
    inner = getattr(error, "cause", None) or error
    if isinstance(inner, InvariantViolation):
        names = sorted({check.invariant for check in inner.violations})
        return "invariant:" + ",".join(names)
    if isinstance(error, SpecExecutionError):
        head = error.message.split(":", 1)[0]
        if head == "InvariantViolation":
            # Worker-side violation: the names live in the message's
            # bracketed headers.
            names = sorted({line.split("]")[0].lstrip("[")
                            for line in error.message.splitlines()
                            if line.startswith("[")})
            if names:
                return "invariant:" + ",".join(names)
        return f"crash:{head}"
    return f"crash:{type(error).__name__}"


def expected_violation(spec: CampaignSpec) -> bool:
    """Does this spec *deliberately* break an audited invariant?

    Disabling completion dedupe while duplication faults are armed
    models a broken at-least-once consumer whose double-processed (and
    double-billed) completions the auditor must catch — so an
    :class:`InvariantViolation` raised identically on every path is the
    laboratory working as designed, not a fuzz finding.  Cross-path
    parity of the violation is still enforced.
    """
    plan = dict(spec.fault_plan)
    return (plan.get("completion_dedupe", True) is False
            and plan.get("queue_duplication_probability", 0) > 0)


def planted_bug_active(spec: CampaignSpec) -> bool:
    """Is the seeded planted bug armed *and* triggered by this spec?"""
    if os.environ.get(PLANT_ENV, "") != "dedupe":
        return False
    return expected_violation(spec)


def _outcome_checksum(outcome: CampaignOutcome) -> str:
    return payload_checksum(outcome_to_dict(outcome))


def check_spec(spec: CampaignSpec,
               reference: Optional[PathResult] = None) -> FuzzVerdict:
    """Differentially execute ``spec`` and return the oracle's verdict.

    Paths checked:

    ``serial``
        :func:`execute_spec` in this process.
    ``pool``
        :class:`ParallelRunner` — the guarded batch path (single specs
        execute in-process; the cross-*process* check is the
        ``supervised`` reference a fuzz session passes in).
    ``cache``
        The serial outcome written to and re-read from a fresh
        :class:`ResultCache` (content-addressed replay).
    ``persistence``
        The serial outcome round-tripped through JSON text and
        :func:`outcome_from_dict`.

    Plus, always, spec round-trip exactness through
    :func:`spec_to_dict`/:func:`spec_from_dict`.  A ``reference``
    (typically the supervised runner's cross-process observation) joins
    the comparison as one more path.
    """
    findings: List[str] = []
    results: List[PathResult] = []

    # -- serial -----------------------------------------------------------------
    serial_outcome: Optional[CampaignOutcome] = None
    serial_error: Optional[BaseException] = None
    try:
        serial_outcome = execute_spec(spec)
    except Exception as error:
        serial_error = error
        fingerprint = _error_fingerprint(error)
        if planted_bug_active(spec):
            # The planted bug, error flavor: the serial path reports
            # the dedupe violation with a mangled diagnostic, breaking
            # typed-exception parity with the other paths.
            fingerprint += " [dedupe-miscount]"
        results.append(PathResult("serial", error=fingerprint))
    else:
        payload = outcome_to_dict(serial_outcome)
        if planted_bug_active(spec):
            # The planted bug: the serial path mis-counts under
            # dedupe-off duplication (a calibration-gated divergence
            # the differential oracle must catch).
            payload = dict(payload)
            payload["idle_transactions"] = \
                payload.get("idle_transactions", 0) + 1
        results.append(PathResult("serial",
                                  checksum=payload_checksum(payload)))

    # -- pool -------------------------------------------------------------------
    try:
        pool_outcome = ParallelRunner(workers=1).run([spec])[0]
    except Exception as error:
        results.append(PathResult("pool",
                                  error=_error_fingerprint(error)))
    else:
        results.append(PathResult("pool",
                                  checksum=_outcome_checksum(pool_outcome)))

    # -- cache + persistence (only meaningful given a serial outcome) -----------
    if serial_outcome is not None:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            cache = ResultCache(tmp)
            cache.put(spec, serial_outcome)
            hit = cache.get(spec)
        if hit is None:
            findings.append("roundtrip:cache-miss")
            results.append(PathResult("cache", error="cache: miss"))
        else:
            results.append(PathResult("cache",
                                      checksum=_outcome_checksum(hit)))
        try:
            text = json.dumps(outcome_to_dict(serial_outcome),
                              default=repr)
            rebuilt = outcome_from_dict(json.loads(text), spec)
            results.append(PathResult(
                "persistence", checksum=_outcome_checksum(rebuilt)))
        except Exception as error:
            findings.append("roundtrip:outcome-persistence")
            results.append(PathResult("persistence",
                                      error=_error_fingerprint(error)))

    if reference is not None:
        results.append(reference)

    # -- compare ----------------------------------------------------------------
    serial_result = results[0]
    for other in results[1:]:
        if serial_result.error is not None or other.error is not None:
            if serial_result.error != other.error:
                findings.append(
                    f"error-parity:serial-vs-{other.path}")
        elif serial_result.checksum != other.checksum:
            findings.append(f"divergence:serial-vs-{other.path}")
    if serial_error is not None:
        finding = _finding_for_error(serial_error)
        if not (finding.startswith("invariant:")
                and expected_violation(spec)):
            findings.append(finding)

    # -- spec round trip --------------------------------------------------------
    try:
        rebuilt_spec = spec_from_dict(
            json.loads(json.dumps(spec_to_dict(spec), default=repr)))
    except SpecValidationError:
        findings.append("roundtrip:spec-validation")
    else:
        if rebuilt_spec != spec:
            findings.append("roundtrip:spec-equality")
        elif rebuilt_spec.spec_hash() != spec.spec_hash():
            findings.append("roundtrip:spec-hash")

    ordered = tuple(dict.fromkeys(findings))   # dedupe, keep order
    return FuzzVerdict(spec=spec, spec_hash=spec.spec_hash(),
                       paths=tuple(results), findings=ordered)


# -- the shrinker ------------------------------------------------------------------

#: Scalar fields the shrinker tries to pull toward their minimal value.
_SHRINK_TARGETS: Tuple[Tuple[str, Any], ...] = (
    ("iterations", 1),
    ("warmup", 0),
    ("fanout", 2),
    ("batch", 0),
    ("days", 0.125),
    ("idle_window_s", 0.0),
    ("think_time_s", 1.0),
    ("settle_time_s", 1.0),
    ("horizon_s", 5.0),
    ("arrival_rate_per_s", 2.0),
    ("slo_p99_s", 0.0),
    ("seed", 0),
)


def shrink(spec: CampaignSpec, fingerprint: str,
           check: Optional[Callable[[CampaignSpec], FuzzVerdict]] = None,
           max_checks: int = 150) -> Tuple[CampaignSpec, int]:
    """Greedily minimize ``spec`` while ``fingerprint`` keeps appearing.

    Deterministic passes (drop fault-plan entries, drop mitigation
    pairs, drop calibration overrides and invoke kwargs, pull counts
    and durations toward minimal) repeat until a fixpoint; a candidate
    is accepted only when re-checking it still yields ``fingerprint``.
    Returns the minimal spec plus the number of oracle checks spent.
    """
    oracle = check or check_spec
    checks = 0

    def still_fails(candidate: CampaignSpec) -> bool:
        nonlocal checks
        checks += 1
        try:
            return fingerprint in oracle(candidate).findings
        except Exception:
            return False

    current = spec
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _shrink_candidates(current):
            if checks >= max_checks:
                break
            if still_fails(candidate):
                current = candidate
                improved = True
                break   # restart passes from the smaller spec
    return current, checks


def _shrink_candidates(spec: CampaignSpec):
    """Candidate smaller specs, in deterministic priority order.

    Invalid candidates (a drop that breaks spec validation) are
    silently skipped — the caller only sees constructible specs.
    """
    for spec_field in ("fault_plan", "mitigation",
                       "calibration_overrides", "invoke_kwargs"):
        items = getattr(spec, spec_field)
        for index in range(len(items)):
            smaller = items[:index] + items[index + 1:]
            candidate = _try_replace(spec, **{spec_field: smaller})
            if candidate is not None:
                yield candidate
    for name, target in _SHRINK_TARGETS:
        if getattr(spec, name) != target:
            candidate = _try_replace(spec, **{name: target})
            if candidate is not None:
                yield candidate


def _try_replace(spec: CampaignSpec, **changes: Any,
                 ) -> Optional[CampaignSpec]:
    try:
        return replace(spec, **changes)
    except (ValueError, KeyError, TypeError):
        return None


# -- repro documents + corpus ------------------------------------------------------


def repro_document(spec: CampaignSpec, fingerprint: str,
                   found: Optional[Dict[str, int]] = None,
                   ) -> Dict[str, Any]:
    """The JSON document shape of one shrunk reproducer.

    Checksummed like a journal entry: ``checksum`` covers the
    fingerprint and the canonical spec, so a hand-edited or bit-rotted
    corpus entry is detected on read instead of silently replaying a
    different bug.
    """
    canonical = spec_to_dict(spec)
    return {
        "format_version": FORMAT_VERSION,
        "kind": "fuzz-repro",
        "fingerprint": fingerprint,
        "spec_hash": spec.spec_hash(),
        "found": dict(found) if found else None,
        "checksum": payload_checksum({"fingerprint": fingerprint,
                                      "spec": canonical}),
        "spec": canonical,
    }


def write_repro(path: Union[str, Path], spec: CampaignSpec,
                fingerprint: str,
                found: Optional[Dict[str, int]] = None) -> Path:
    """Atomically write one repro document."""
    document = repro_document(spec, fingerprint, found=found)
    return write_atomic(Path(path),
                        json.dumps(document, indent=2, sort_keys=True,
                                   default=repr))


def read_repro(path: Union[str, Path],
               ) -> Tuple[CampaignSpec, str, Dict[str, Any]]:
    """Load + verify one repro document; returns (spec, fingerprint,
    document).  Raises :class:`FuzzError` on anything unusable."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise FuzzError(f"unreadable repro at {path}: {error}") from error
    if not isinstance(document, dict) or \
            document.get("kind") != "fuzz-repro":
        raise FuzzError(f"{path} is not a fuzz-repro document")
    if document.get("format_version") != FORMAT_VERSION:
        raise FuzzError(
            f"{path}: unsupported format version "
            f"{document.get('format_version')!r}")
    fingerprint = document.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        raise FuzzError(f"{path}: missing fingerprint")
    expected = payload_checksum({"fingerprint": fingerprint,
                                 "spec": document.get("spec")})
    if document.get("checksum") != expected:
        raise FuzzError(
            f"{path}: checksum mismatch — the document was edited or "
            f"corrupted; regenerate it with `repro fuzz shrink`")
    try:
        spec = spec_from_dict(document["spec"])
    except SpecValidationError as error:
        raise FuzzError(f"{path}: {error}") from error
    return spec, fingerprint, document


def repro_filename(spec: CampaignSpec, fingerprint: str) -> str:
    """Deterministic corpus filename: fingerprint slug + spec hash."""
    slug = "".join(char if char.isalnum() else "-"
                   for char in fingerprint).strip("-")[:48]
    return f"{slug}-{spec.spec_hash()[:12]}.json"


@dataclass
class ReplayResult:
    """One corpus entry's replay outcome."""

    path: Path
    fingerprint: str
    #: True when the recorded bug still reproduces (the entry is *red*)
    reproduced: bool
    findings: Tuple[str, ...] = ()
    error: Optional[str] = None   # unreadable/invalid entry


def replay_corpus(corpus_dir: Union[str, Path],
                  check: Optional[Callable[[CampaignSpec], FuzzVerdict]]
                  = None) -> List[ReplayResult]:
    """Re-check every corpus entry; green means the bug stays fixed."""
    oracle = check or check_spec
    results: List[ReplayResult] = []
    corpus = Path(corpus_dir)
    for path in sorted(corpus.glob("*.json")):
        try:
            spec, fingerprint, _ = read_repro(path)
        except FuzzError as error:
            results.append(ReplayResult(path=path, fingerprint="",
                                        reproduced=False,
                                        error=str(error)))
            continue
        verdict = oracle(spec)
        results.append(ReplayResult(
            path=path, fingerprint=fingerprint,
            reproduced=fingerprint in verdict.findings,
            findings=verdict.findings))
    return results


# -- the fuzz session --------------------------------------------------------------


class _JournalSlice(SweepJournal):
    """A chunk-local view of the session's full-budget journal.

    The session freezes one manifest for the *entire* spec list up
    front, then feeds specs to :class:`SupervisedRunner` in chunks (so
    a time budget can stop between chunks).  The runner journals with
    chunk-local indices; this view remaps them onto the global sweep
    positions and leaves manifest creation to the session — preserving
    the runner's drain-to-journal signal behaviour and ``repro resume``
    compatibility unchanged.
    """

    def __init__(self, journal: SweepJournal, base: int,
                 all_specs: Sequence[CampaignSpec]):
        super().__init__(journal.root)
        self._base = base
        self._all_specs = list(all_specs)

    def create_or_open(self, specs, argv=None, resume=True):
        return self.open()   # the session already created the manifest

    def record(self, index: int, outcome: CampaignOutcome) -> Path:
        return super().record(self._base + index, outcome)

    def completed(self, specs=None):
        chunk = (len(specs) if specs is not None
                 else len(self._all_specs) - self._base)
        done = SweepJournal.completed(self, self._all_specs)
        return {index - self._base: outcome
                for index, outcome in done.items()
                if self._base <= index < self._base + chunk}


@dataclass
class FuzzSessionResult:
    """One fuzz session's full ledger."""

    seed: int
    budget: int
    verdicts: List[FuzzVerdict] = field(default_factory=list)
    #: (verdict, shrunk spec, fingerprint, corpus path) per finding
    corpus_paths: List[Path] = field(default_factory=list)
    #: specs actually executed (< budget when the time budget ran out)
    executed: int = 0
    #: True when a --time-budget stopped the session early
    exhausted: bool = False

    @property
    def findings(self) -> List[FuzzVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]

    @property
    def ok(self) -> bool:
        return not self.findings


def run_fuzz(seed: int, budget: int,
             time_budget_s: Optional[float] = None,
             journal: Optional[Union[str, Path, SweepJournal]] = None,
             cache: Optional[ResultCache] = None,
             workers: int = 1,
             corpus_dir: Optional[Union[str, Path]] = None,
             shrink_findings: bool = True,
             argv: Optional[Sequence[str]] = None,
             resume: bool = False,
             spec_timeout_s: Optional[float] = None,
             max_restarts: int = 2,
             log: Callable[[str], None] = lambda line: None,
             ) -> FuzzSessionResult:
    """One deterministic fuzz session.

    Draws ``budget`` specs from ``seed``'s stream, executes them under
    :class:`SupervisedRunner` (per-spec worker processes — the
    cross-process leg of the differential) with an optional crash-safe
    journal, differentially checks every executed spec, shrinks each
    finding to a minimal reproducer and writes it to ``corpus_dir``.

    Determinism: with no time budget, two sessions with the same
    ``(seed, budget)`` produce identical spec sequences, identical
    verdicts and identical corpus contents.  A ``time_budget_s`` only
    ever truncates the sequence at a chunk boundary — what *was*
    executed is still identical — and the journal makes the remainder
    resumable (``repro resume`` or ``--resume``).

    ``KeyboardInterrupt`` propagates to the caller after the runner has
    drained completed outcomes into the journal, so the CLI can honor
    the exit-130 resume-hint contract the campaign commands share.
    """
    generator = SpecGenerator(seed)
    specs = generator.specs(budget)
    result = FuzzSessionResult(seed=seed, budget=budget)

    if journal is not None and not isinstance(journal, SweepJournal):
        journal = SweepJournal(journal)

    outcomes: List[Optional[CampaignOutcome]] = [None] * len(specs)
    errors: Dict[int, BaseException] = {}

    if journal is not None:
        journal.create_or_open(specs, argv=argv, resume=resume)

    started = time.monotonic()
    chunk_size = max(4, workers * 4)
    executed_through = 0
    for base in range(0, len(specs), chunk_size):
        if time_budget_s is not None and \
                time.monotonic() - started >= time_budget_s:
            result.exhausted = True
            break
        chunk = specs[base:base + chunk_size]
        runner = SupervisedRunner(
            workers=workers, cache=cache,
            journal=(_JournalSlice(journal, base, specs)
                     if journal is not None else None),
            spec_timeout_s=spec_timeout_s, max_restarts=max_restarts)
        partial = runner.run(chunk, resume=True)
        for offset, outcome in enumerate(partial.outcomes):
            if outcome is not None:
                outcomes[base + offset] = outcome
        for failure in partial.failures:
            errors[base + failure.index] = failure.error
        executed_through = base + len(chunk)
        log(f"fuzz: {executed_through}/{len(specs)} specs executed")

    result.executed = executed_through

    # -- differential verdicts ---------------------------------------------------
    for index in range(executed_through):
        spec = specs[index]
        outcome = outcomes[index]
        if outcome is not None:
            reference = PathResult("supervised",
                                   checksum=_outcome_checksum(outcome))
        else:
            error = errors.get(index)
            if not isinstance(error, SpecExecutionError):
                # Environmental failure (WorkerCrash/SpecTimeout): not
                # a deterministic observation, nothing to differ with.
                reference = None
            else:
                reference = PathResult(
                    "supervised", error=_error_fingerprint(error))
        verdict = check_spec(spec, reference=reference)
        verdict.index = index
        result.verdicts.append(verdict)
        if not verdict.ok:
            log(f"fuzz: spec #{index} ({spec.deployment} "
                f"{spec.campaign}) -> {', '.join(verdict.findings)}")

    # -- shrink + corpus ---------------------------------------------------------
    if corpus_dir is not None:
        corpus = Path(corpus_dir)
        seen: set = set()
        for verdict in result.findings:
            fingerprint = verdict.findings[0]
            if fingerprint in seen:
                continue   # one minimal reproducer per distinct bug
            seen.add(fingerprint)
            minimal = verdict.spec
            if shrink_findings:
                minimal, spent = shrink(verdict.spec, fingerprint)
                log(f"fuzz: shrunk {fingerprint} in {spent} checks")
            corpus.mkdir(parents=True, exist_ok=True)
            path = corpus / repro_filename(minimal, fingerprint)
            write_repro(path, minimal, fingerprint,
                        found={"seed": seed, "index": verdict.index})
            result.corpus_paths.append(path)
    return result
