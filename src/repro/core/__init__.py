"""The paper's contribution: the cross-platform evaluation harness.

This package wires the two platform simulations and the two workloads
into the six deployment variants of Table II, runs the measurement
campaigns of §IV, and renders every table and figure of §V.
"""

from repro.core.testbed import Testbed
from repro.core.deployments import (
    Deployment,
    RunResult,
    build_ml_inference_deployments,
    build_ml_training_deployments,
    build_video_deployments,
)
from repro.core.experiment import (
    CampaignResult,
    ColdStartCampaign,
    ExperimentRunner,
)
from repro.core.metrics import (
    LatencyBreakdown,
    LatencyStats,
    cdf_points,
    percentile,
    summarize,
)
from repro.core.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    LoadGenerator,
    PoissonArrivals,
    UniformArrivals,
)
from repro.core.costs import CostReport, cost_report
from repro.core.parallel import (
    CampaignOutcome,
    CampaignSpec,
    ParallelRunner,
    SpecExecutionError,
    SweepError,
    execute_spec,
)
from repro.core.cache import ResultCache
from repro.core.checkpoint import JournalError, SweepJournal
from repro.core.supervise import (
    ChaosPlan,
    PartialSweepResult,
    SpecFailure,
    SpecTimeout,
    SupervisedRunner,
    WorkerCrash,
)
from repro.core.reliability import ReliabilitySummary, execute_reliability_spec
from repro.core.overload import OverloadSummary, execute_overload_spec
from repro.core.mitigation import (
    CircuitOpenError,
    MitigationEngine,
    MitigationPolicy,
    MitigationTimeout,
)
from repro.core.resilience import ResilienceSummary, execute_resilience_spec
from repro.core.fuzz import (
    FuzzError,
    FuzzSessionResult,
    FuzzVerdict,
    SpecGenerator,
    check_spec,
    replay_corpus,
    run_fuzz,
    shrink,
)
from repro.platforms.faults import FaultInjector, FaultPlan
from repro.core.workflow import (
    Workflow,
    map_over,
    parallel,
    sequence,
    task,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "CampaignOutcome",
    "CampaignResult",
    "CampaignSpec",
    "ChaosPlan",
    "JournalError",
    "ParallelRunner",
    "PartialSweepResult",
    "ResultCache",
    "SpecExecutionError",
    "SpecFailure",
    "SpecTimeout",
    "SupervisedRunner",
    "SweepError",
    "SweepJournal",
    "WorkerCrash",
    "execute_spec",
    "DiurnalArrivals",
    "LoadGenerator",
    "PoissonArrivals",
    "UniformArrivals",
    "ColdStartCampaign",
    "CostReport",
    "Deployment",
    "ExperimentRunner",
    "FaultInjector",
    "FaultPlan",
    "ReliabilitySummary",
    "execute_reliability_spec",
    "OverloadSummary",
    "execute_overload_spec",
    "CircuitOpenError",
    "MitigationEngine",
    "MitigationPolicy",
    "MitigationTimeout",
    "ResilienceSummary",
    "execute_resilience_spec",
    "FuzzError",
    "FuzzSessionResult",
    "FuzzVerdict",
    "SpecGenerator",
    "check_spec",
    "replay_corpus",
    "run_fuzz",
    "shrink",
    "LatencyBreakdown",
    "LatencyStats",
    "RunResult",
    "Testbed",
    "Workflow",
    "build_ml_inference_deployments",
    "build_ml_training_deployments",
    "build_video_deployments",
    "cdf_points",
    "cost_report",
    "percentile",
    "summarize",
    "map_over",
    "parallel",
    "sequence",
    "task",
]
