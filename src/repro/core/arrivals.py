"""Open-loop load generation: arrival processes and a load driver.

The paper's protocol is closed-loop — one request at a time, spaced out.
Production traffic is not: requests arrive on their own schedule whether
or not earlier ones finished.  This module adds the standard arrival
models (Poisson, uniform, diurnal, bursty) and an open-loop driver, which
exposes a behaviour the paper's protocol cannot see: under concurrent
load, AWS's per-request containers absorb bursts while Azure's shared
instance pool queues them.

Example
-------
>>> from repro.core.arrivals import PoissonArrivals
>>> import numpy as np
>>> arrivals = PoissonArrivals(rate_per_s=2.0)
>>> times = arrivals.schedule(np.random.default_rng(0), horizon_s=10.0)
>>> all(0 <= t <= 10.0 for t in times)
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.core.deployments.base import Deployment, RunResult
from repro.core.experiment import CampaignResult


class ArrivalProcess:
    """Base class: produces arrival timestamps over a horizon."""

    def schedule(self, rng: np.random.Generator,
                 horizon_s: float) -> List[float]:
        """Arrival times in ``[0, horizon_s)``, sorted ascending."""
        raise NotImplementedError


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_s``."""

    rate_per_s: float

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")

    def schedule(self, rng, horizon_s):
        times = []
        now = float(rng.exponential(1.0 / self.rate_per_s))
        while now < horizon_s:
            times.append(now)
            now += float(rng.exponential(1.0 / self.rate_per_s))
        return times


@dataclass
class UniformArrivals(ArrivalProcess):
    """Perfectly regular arrivals at ``rate_per_s`` (a pacing baseline)."""

    rate_per_s: float

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")

    def schedule(self, rng, horizon_s):
        interval = 1.0 / self.rate_per_s
        count = int(horizon_s / interval)
        return [interval * (index + 1) for index in range(count)
                if interval * (index + 1) < horizon_s]


@dataclass
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night modulation of a Poisson process.

    Rate at time t: ``base + amplitude * (1 + sin(2πt/period)) / 2``.
    Implemented by thinning a Poisson process at the peak rate.
    """

    base_rate_per_s: float
    amplitude_per_s: float
    period_s: float = 86_400.0

    def __post_init__(self):
        if self.base_rate_per_s <= 0 or self.amplitude_per_s < 0:
            raise ValueError("rates must be positive")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    def rate_at(self, time_s: float) -> float:
        phase = (1.0 + math.sin(2.0 * math.pi * time_s / self.period_s)) / 2
        return self.base_rate_per_s + self.amplitude_per_s * phase

    def schedule(self, rng, horizon_s):
        peak = self.base_rate_per_s + self.amplitude_per_s
        times = []
        now = float(rng.exponential(1.0 / peak))
        while now < horizon_s:
            if rng.random() < self.rate_at(now) / peak:
                times.append(now)
            now += float(rng.exponential(1.0 / peak))
        return times


@dataclass
class BurstyArrivals(ArrivalProcess):
    """Poisson background plus occasional simultaneous bursts."""

    rate_per_s: float
    burst_size: int = 10
    bursts_per_hour: float = 2.0

    def __post_init__(self):
        if self.rate_per_s <= 0 or self.burst_size < 1:
            raise ValueError("rate and burst size must be positive")

    def schedule(self, rng, horizon_s):
        times = list(PoissonArrivals(self.rate_per_s).schedule(
            rng, horizon_s))
        n_bursts = rng.poisson(self.bursts_per_hour * horizon_s / 3600.0)
        for _ in range(n_bursts):
            at = float(rng.uniform(0.0, horizon_s))
            times.extend([at] * self.burst_size)
        return sorted(times)


class LoadGenerator:
    """Open-loop driver: fire invocations on the arrival schedule.

    Unlike :class:`~repro.core.experiment.ExperimentRunner`, it does not
    wait for one run to finish before the next arrives — concurrency is
    whatever the schedule produces.
    """

    def __init__(self, arrivals: ArrivalProcess, horizon_s: float,
                 drain: bool = True):
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        self.arrivals = arrivals
        self.horizon_s = horizon_s
        self.drain = drain

    def run(self, deployment: Deployment,
            invoke_kwargs: Optional[Dict[str, Any]] = None
            ) -> CampaignResult:
        """Drive the deployment; returns a campaign of all completed runs."""
        deployment.deploy()
        testbed = deployment.testbed
        rng = testbed.streams.get(f"load.{deployment.name}")
        offsets = self.arrivals.schedule(rng, self.horizon_s)
        kwargs = invoke_kwargs or {}
        result = CampaignResult(deployment=deployment.name)
        start = testbed.now

        def fire(env, delay):
            yield env.timeout(delay)
            run = yield from deployment.invoke(**kwargs)
            result.runs.append(run)
            return run

        processes = [testbed.env.process(fire(testbed.env, offset))
                     for offset in offsets]

        def driver(env):
            if processes:
                yield env.all_of(processes)

        if self.drain:
            testbed.env.run(until=testbed.env.process(driver(testbed.env)))
        else:
            testbed.env.run(until=start + self.horizon_s)
        result.runs.sort(key=lambda run: run.started_at)
        return result
