"""Open-loop load generation: arrival processes and a load driver.

The paper's protocol is closed-loop — one request at a time, spaced out.
Production traffic is not: requests arrive on their own schedule whether
or not earlier ones finished.  This module adds the standard arrival
models (Poisson, uniform, diurnal, bursty) and an open-loop driver, which
exposes a behaviour the paper's protocol cannot see: under concurrent
load, AWS's per-request containers absorb bursts while Azure's shared
instance pool queues them.

Schedules are generated vectorized (numpy arrays, chunked draws) so that
million-arrival campaigns spend microseconds, not seconds, here.  The
Poisson/uniform streams are float-for-float identical to the original
scalar loops; see ``_exponential_arrivals`` for how chunk boundaries
preserve exact accumulation order.

Example
-------
>>> from repro.core.arrivals import PoissonArrivals
>>> import numpy as np
>>> arrivals = PoissonArrivals(rate_per_s=2.0)
>>> times = arrivals.schedule(np.random.default_rng(0), horizon_s=10.0)
>>> all(0 <= t <= 10.0 for t in times)
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.core.deployments.base import Deployment
from repro.core.experiment import CampaignResult


def _exponential_arrivals(rng: np.random.Generator, rate_per_s: float,
                          horizon_s: float,
                          _chunk: Optional[int] = None) -> np.ndarray:
    """Poisson arrival times in ``[0, horizon_s)`` as a float64 array.

    Interarrival gaps are drawn in vectorized chunks and accumulated with
    ``np.cumsum``; the exact running sum is carried across chunk
    boundaries by folding it into the next chunk's first gap.  Both
    tricks preserve left-to-right float addition, so the emitted times
    match the scalar ``now += rng.exponential(scale)`` loop this replaces
    float-for-float.  (The generator may be drawn slightly *past* the
    horizon — the tail of the last chunk — which is fine: no caller
    consumes the stream after scheduling.)
    """
    scale = 1.0 / rate_per_s
    expected = horizon_s * rate_per_s
    # Expected count plus four sigma of headroom: one chunk almost always
    # suffices, and the loop handles the unlucky tail exactly.
    # ``_chunk`` is a test hook: forcing tiny chunks exercises the
    # boundary-carry path, which honest sizing almost never hits.
    chunk = _chunk or max(int(expected + 4.0 * math.sqrt(expected)) + 16, 64)
    parts = []
    last = 0.0
    while True:
        gaps = rng.exponential(scale, size=chunk)
        gaps[0] += last
        times = np.cumsum(gaps)
        if times[-1] >= horizon_s:
            # Gaps are positive, so the mask keeps a monotone prefix.
            parts.append(times[times < horizon_s])
            break
        parts.append(times)
        last = float(times[-1])
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


class ArrivalProcess:
    """Base class: produces arrival timestamps over a horizon."""

    def schedule(self, rng: np.random.Generator,
                 horizon_s: float) -> np.ndarray:
        """Arrival times in ``[0, horizon_s)``, sorted ascending."""
        raise NotImplementedError


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_s``."""

    rate_per_s: float

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")

    def schedule(self, rng, horizon_s):
        return _exponential_arrivals(rng, self.rate_per_s, horizon_s)


@dataclass
class UniformArrivals(ArrivalProcess):
    """Perfectly regular arrivals at ``rate_per_s`` (a pacing baseline)."""

    rate_per_s: float

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")

    def schedule(self, rng, horizon_s):
        interval = 1.0 / self.rate_per_s
        count = int(horizon_s / interval)
        times = np.arange(1, count + 1, dtype=np.float64) * interval
        return times[times < horizon_s]


@dataclass
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night modulation of a Poisson process.

    Rate at time t: ``base + amplitude * (1 + sin(2πt/period)) / 2``.
    Implemented by thinning a Poisson process at the peak rate: all
    candidate arrivals are drawn first, then one vectorized uniform draw
    decides the whole thinning pass.
    """

    base_rate_per_s: float
    amplitude_per_s: float
    period_s: float = 86_400.0

    def __post_init__(self):
        if self.base_rate_per_s <= 0 or self.amplitude_per_s < 0:
            raise ValueError("rates must be positive")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    def rate_at(self, time_s: float) -> float:
        phase = (1.0 + math.sin(2.0 * math.pi * time_s / self.period_s)) / 2
        return self.base_rate_per_s + self.amplitude_per_s * phase

    def _keep_fraction(self, times: np.ndarray) -> np.ndarray:
        """Vectorized acceptance probability ``rate_at(t) / peak``."""
        peak = self.base_rate_per_s + self.amplitude_per_s
        phase = (1.0 + np.sin(2.0 * np.pi * times / self.period_s)) / 2
        return (self.base_rate_per_s + self.amplitude_per_s * phase) / peak

    def schedule(self, rng, horizon_s):
        peak = self.base_rate_per_s + self.amplitude_per_s
        candidates = _exponential_arrivals(rng, peak, horizon_s)
        if candidates.size == 0:
            return candidates
        # One uniform draw for the entire thinning pass.  The stream is
        # identical to drawing ``rng.random()`` once per candidate — see
        # the determinism regression test — but candidates are now drawn
        # before (not interleaved with) the thinning variates.
        keep = rng.random(size=candidates.size) < self._keep_fraction(
            candidates)
        return candidates[keep]


@dataclass
class BurstyArrivals(ArrivalProcess):
    """Poisson background plus occasional simultaneous bursts."""

    rate_per_s: float
    burst_size: int = 10
    bursts_per_hour: float = 2.0

    def __post_init__(self):
        if self.rate_per_s <= 0 or self.burst_size < 1:
            raise ValueError("rate and burst size must be positive")

    def schedule(self, rng, horizon_s):
        times = _exponential_arrivals(rng, self.rate_per_s, horizon_s)
        n_bursts = int(rng.poisson(self.bursts_per_hour * horizon_s / 3600.0))
        if n_bursts:
            at = rng.uniform(0.0, horizon_s, size=n_bursts)
            times = np.concatenate([times, np.repeat(at, self.burst_size)])
        return np.sort(times, kind="stable")


class LoadGenerator:
    """Open-loop driver: fire invocations on the arrival schedule.

    Unlike :class:`~repro.core.experiment.ExperimentRunner`, it does not
    wait for one run to finish before the next arrives — concurrency is
    whatever the schedule produces.

    Scheduling is batched: one pre-registered timeout per distinct
    arrival timestamp, whose callback spawns that instant's invocation
    processes.  Compared to one waiting generator per request this
    creates processes lazily (no up-front army of parked generators) and
    wakes the kernel once per timestamp instead of once per request —
    the difference dominates for bursty schedules, where a burst of N
    coincident arrivals costs one dispatch, not N.
    """

    def __init__(self, arrivals: ArrivalProcess, horizon_s: float,
                 drain: bool = True):
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        self.arrivals = arrivals
        self.horizon_s = horizon_s
        self.drain = drain

    def run(self, deployment: Deployment,
            invoke_kwargs: Optional[Dict[str, Any]] = None
            ) -> CampaignResult:
        """Drive the deployment; returns a campaign of all completed runs."""
        deployment.deploy()
        testbed = deployment.testbed
        rng = testbed.streams.get(f"load.{deployment.name}")
        offsets = self.arrivals.schedule(rng, self.horizon_s)
        kwargs = invoke_kwargs or {}
        result = CampaignResult(deployment=deployment.name)
        env = testbed.env
        start = testbed.now
        remaining = len(offsets)
        done = env.event()

        def invoke_one(env):
            nonlocal remaining
            run = yield from deployment.invoke(**kwargs)
            result.runs.append(run)
            remaining -= 1
            if not remaining:
                done.succeed(None)
            return run

        def spawner(count):
            # Spawn order follows schedule order, so coincident arrivals
            # (bursts) keep FIFO semantics downstream.
            def spawn(_event, count=count):
                for _ in range(count):
                    env.process(invoke_one(env))
            return spawn

        if remaining:
            stamps, counts = np.unique(offsets, return_counts=True)
            for at, count in zip(stamps.tolist(), counts.tolist()):
                env.timeout(at).callbacks.append(spawner(count))

        if self.drain:
            if remaining:
                env.run(until=done)
        else:
            env.run(until=start + self.horizon_s)
        result.runs.sort(key=lambda run: run.started_at)
        return result
