"""Calibrated service-time models for every workload stage.

The simulation charges each handler the time its real counterpart would
spend computing; the real numpy kernels validate *correctness* while
these models set *duration*.  Values are per-stage seconds chosen so that
stage ratios (training ≫ preparation; RF ≫ KNN; detection ∝ bytes) and
the paper's end-to-end magnitudes are plausible; §V only depends on their
ratios across deployments, which the platform mechanisms produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.platforms.base import WorkModel
from repro.sim.distributions import Normal
from repro.storage.payload import MB


def _model(seconds: float, jitter: float = 0.04) -> WorkModel:
    """A work model centred on ``seconds`` with small relative jitter."""
    return WorkModel(base=Normal(mu=seconds, sigma=seconds * jitter))


@dataclass(frozen=True)
class MLStageDurations:
    """Per-stage compute seconds for one dataset scale."""

    prepare: float
    reduce: float
    train_rf: float
    train_knn: float
    train_lasso: float
    select: float
    inference: float
    apply_prepare: float      # inference-time feature engineering
    apply_reduce: float       # inference-time PCA projection


#: The paper's two dataset scales (§IV-A): 200 and 10 000 rows.
ML_SMALL_ROWS = 200
ML_LARGE_ROWS = 10_000

ML_DURATIONS: Dict[str, MLStageDurations] = {
    "small": MLStageDurations(prepare=4.0, reduce=2.0, train_rf=5.0,
                              train_knn=0.8, train_lasso=1.5, select=0.3,
                              inference=1.0, apply_prepare=0.4,
                              apply_reduce=0.3),
    "large": MLStageDurations(prepare=25.0, reduce=15.0, train_rf=30.0,
                              train_knn=4.0, train_lasso=8.0, select=1.0,
                              inference=2.5, apply_prepare=1.0,
                              apply_reduce=0.8),
}

#: Loading a serialized artifact (dataset, matrix) into memory — paid
#: each time a stage re-hydrates state it received via storage.
ML_DESERIALIZE_S_PER_MB = 0.8
#: Re-hydrating a trained model object (unpickling tree ensembles is far
#: slower than reading raw arrays) — the AWS inference path pays this on
#: every run; Azure entities keep the live object (§V-A Fig 9 discussion).
ML_MODEL_LOAD_S_PER_MB = 4.0


def ml_work_models(scale: str) -> Dict[str, WorkModel]:
    """Named work models for the ML stages at ``scale``."""
    durations = ML_DURATIONS[scale]
    return {
        "prepare": _model(durations.prepare),
        "reduce": _model(durations.reduce),
        "train_rf": _model(durations.train_rf),
        "train_knn": _model(durations.train_knn),
        "train_lasso": _model(durations.train_lasso),
        "select": _model(durations.select),
        "inference": _model(durations.inference),
        "apply_prepare": _model(durations.apply_prepare),
        "apply_reduce": _model(durations.apply_reduce),
        # units = megabytes re-hydrated
        "deserialize": WorkModel(base=Normal(mu=0.05, sigma=0.01),
                                 per_unit=ML_DESERIALIZE_S_PER_MB),
        # units = megabytes of serialized model
        "load_model": WorkModel(base=Normal(mu=0.1, sigma=0.02),
                                per_unit=ML_MODEL_LOAD_S_PER_MB),
    }


#: Video processing: detection compute per modeled megabyte of video.
VIDEO_DETECT_S_PER_MB = 8.0
#: Fixed overheads for the split and merge steps.
VIDEO_SPLIT_BASE_S = 2.0
VIDEO_SPLIT_S_PER_MB = 0.05
VIDEO_MERGE_BASE_S = 1.0
VIDEO_MERGE_S_PER_CHUNK = 0.05


def video_work_models() -> Dict[str, WorkModel]:
    """Named work models for the video stages (units = MB or chunks)."""
    return {
        "split": WorkModel(base=Normal(mu=VIDEO_SPLIT_BASE_S, sigma=0.1),
                           per_unit=VIDEO_SPLIT_S_PER_MB),
        "detect": WorkModel(base=Normal(mu=0.5, sigma=0.05),
                            per_unit=VIDEO_DETECT_S_PER_MB),
        "merge": WorkModel(base=Normal(mu=VIDEO_MERGE_BASE_S, sigma=0.05),
                           per_unit=VIDEO_MERGE_S_PER_CHUNK),
    }


def video_detect_seconds(chunk_bytes: int) -> float:
    """Expected detection time for a chunk of ``chunk_bytes``."""
    return 0.5 + VIDEO_DETECT_S_PER_MB * chunk_bytes / MB
