"""Reliability campaigns: measuring the price of fault tolerance.

A reliability campaign runs the same workload twice from the same seed —
once under a :class:`~repro.platforms.faults.FaultPlan` and once
fault-free — and reports what the chaos cost: success rate, platform
retries, GB-s wasted on doomed attempts, per-run cost amplification and
tail-latency inflation.  This quantifies the paper's central trade: the
recovery machinery (Step Functions Retry/Catch, Durable Functions event
sourcing) buys fault tolerance with latency and money.

Everything is derived from ``(spec.seed, spec.fault_plan)``, so a
reliability outcome is bit-identical across the serial runner,
:class:`~repro.core.parallel.ParallelRunner` workers and cache hits,
exactly like the other campaign types.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.core.costs import CostReport, cost_report
from repro.core.experiment import CampaignResult
from repro.core.metrics import breakdown_from_spans, percentile
from repro.core.testbed import Testbed

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.core.parallel import CampaignOutcome, CampaignSpec


@dataclass(frozen=True)
class ReliabilitySummary:
    """The chaos bill for one deployment under one fault plan."""

    deployment: str
    platform: str
    total_runs: int
    successes: int
    failures: int
    #: retries the platforms performed absorbing the injected faults
    retries: int
    injected_crashes: int
    injected_errors: int
    injected_stragglers: int
    delayed_messages: int
    duplicated_messages: int
    host_crashes: int
    #: GB-s billed to invocation attempts that then crashed
    wasted_gb_s: float
    cost_per_run: float
    baseline_cost_per_run: float
    #: faulted cost / fault-free cost — the price of reliability
    cost_amplification: float
    p50_latency_s: float
    p99_latency_s: float
    baseline_p50_latency_s: float
    baseline_p99_latency_s: float
    #: faulted p99 / fault-free p99
    tail_inflation: float
    mean_recovery_time_s: float

    @property
    def success_rate(self) -> float:
        if self.total_runs == 0:
            return 0.0
        return self.successes / self.total_runs


def _run_pass(spec: "CampaignSpec", fault_plan, audit: bool = False
              ) -> Tuple[Testbed, CampaignResult, CostReport, int]:
    """One campaign pass (tolerant of failed runs).

    Mirrors :meth:`ExperimentRunner.run_campaign` exactly — same
    settle/think cadence, same breakdown windows — except that a run
    raising (a fault the platform could not absorb) is recorded as a
    failure instead of aborting the campaign.
    """
    from repro.core.deployments.base import Deployment
    from repro.core.overload import classify_error
    Deployment._run_ids = itertools.count(1)

    testbed = Testbed(seed=spec.seed, calibrations=spec.calibrations(),
                      fault_plan=fault_plan, audit=audit)
    deployment = spec.build_deployment(testbed)
    deployment.deploy()
    auditor = testbed.auditor
    telemetry = deployment.stack.telemetry
    campaign = CampaignResult(deployment=deployment.name)
    kwargs = dict(spec.invoke_kwargs)
    failures = 0

    for index in range(spec.warmup + spec.iterations):
        window_start = testbed.now
        span_cursor = len(telemetry.spans)
        run = None
        if auditor is not None:
            auditor.note_arrival()
        try:
            run = testbed.run(deployment.invoke(**kwargs))
            if auditor is not None:
                auditor.note_outcome("succeeded")
        except Exception as error:  # noqa: BLE001 - the failure IS the measurement
            if auditor is not None:
                auditor.note_outcome(classify_error(error))
            if index >= spec.warmup:
                failures += 1
        testbed.advance(spec.settle_time_s)
        if index >= spec.warmup and run is not None:
            campaign.runs.append(run)
            campaign.breakdowns.append(breakdown_from_spans(
                telemetry, since=window_start, until=testbed.now,
                start_hint=span_cursor))
        testbed.advance(spec.think_time_s)

    cost = cost_report(deployment, per_runs=spec.warmup + spec.iterations)
    return testbed, campaign, cost, failures


def _ratio(value: float, baseline: float) -> float:
    if baseline <= 0:
        return 1.0 if value <= 0 else float("inf")
    return value / baseline


def execute_reliability_spec(spec: "CampaignSpec") -> "CampaignOutcome":
    """Run the faulted pass and its fault-free baseline; summarize.

    Only the faulted pass is audited: it is the one exercising retries,
    duplicates and crash recovery, and the baseline pass would double
    every check for no extra signal.
    """
    from repro.core import audit as audit_mod
    from repro.core.parallel import CampaignOutcome

    plan = spec.fault_plan_obj()
    testbed, campaign, cost, failures = _run_pass(
        spec, plan, audit=audit_mod.enabled_for(spec.audit))
    _, baseline_campaign, baseline_cost, _ = _run_pass(spec, None)

    faults = testbed.faults
    latencies = campaign.latencies
    baseline_latencies = baseline_campaign.latencies
    p50 = percentile(latencies, 50) if latencies else 0.0
    p99 = percentile(latencies, 99) if latencies else 0.0
    base_p50 = (percentile(baseline_latencies, 50)
                if baseline_latencies else 0.0)
    base_p99 = (percentile(baseline_latencies, 99)
                if baseline_latencies else 0.0)
    recovery_times = faults.host_recovery_times if faults else []

    summary = ReliabilitySummary(
        deployment=spec.deployment,
        platform=cost.platform,
        total_runs=spec.iterations,
        successes=len(campaign.runs),
        failures=failures,
        retries=faults.platform_retries if faults else 0,
        injected_crashes=faults.crashes if faults else 0,
        injected_errors=faults.transient_errors if faults else 0,
        injected_stragglers=faults.stragglers if faults else 0,
        delayed_messages=faults.delayed_messages if faults else 0,
        duplicated_messages=faults.duplicated_messages if faults else 0,
        host_crashes=faults.host_crashes if faults else 0,
        wasted_gb_s=faults.wasted_gb_s if faults else 0.0,
        cost_per_run=cost.total,
        baseline_cost_per_run=baseline_cost.total,
        cost_amplification=_ratio(cost.total, baseline_cost.total),
        p50_latency_s=p50,
        p99_latency_s=p99,
        baseline_p50_latency_s=base_p50,
        baseline_p99_latency_s=base_p99,
        tail_inflation=_ratio(p99, base_p99),
        mean_recovery_time_s=(sum(recovery_times) / len(recovery_times)
                              if recovery_times else 0.0))

    report = None
    if testbed.auditor is not None:
        report = testbed.auditor.finalize()
        if audit_mod.RAISE_ON_VIOLATION:
            report.raise_if_violations(spec=spec)
    return CampaignOutcome(spec=spec, campaign=campaign, cost=cost,
                           reliability=summary, audit=report)
