"""Runtime invariant auditor: the simulator checking itself under chaos.

The paper's conclusions rest on subtle platform semantics — exactly-once
billing on AWS, at-least-once queue delivery with deduped side effects on
Azure, deterministic orchestrator replay — and the fault-injection and
overload layers deliberately stress exactly those mechanisms.  This
module turns every campaign into a correctness test: an
:class:`InvariantAuditor` attaches to a :class:`~repro.core.testbed.Testbed`
as the kernel's dispatch monitor, accumulates evidence while the
simulation runs (queue message lifecycles via observers the
:class:`~repro.storage.queue.CloudQueue` registers itself with, request
arrivals/outcomes via the campaign executors, billing charges and
telemetry spans via the meters themselves), and checks a declarative set
of invariants at quiesce:

``clock_monotonicity``
    The kernel's clock never moves backwards across event dispatches.
``request_conservation``
    Every request that arrived ended in exactly one bucket:
    ``arrived == succeeded + throttled + shed + failed``, and non-empty
    throttle/shed buckets are backed by platform-level counters.
``billing_soundness``
    Every billed GB-s interval maps to exactly one closed container
    execution span; each platform's declared
    :class:`~repro.platforms.backend.BillingRules` (granularity,
    minimum billed duration, memory rounding) are respected; throttled
    and shed work is never compute-billed; faulted partial work bills
    only the observed runtime.
``delivery_semantics``
    Every dequeued message was enqueued; broker duplicates appear only
    under a fault plan permitting them; same-message redeliveries are
    spaced by the visibility timeout; completion dedupe actually deduped
    (no duplicate completion events in any orchestration history); no
    orphaned in-flight messages at quiesce (clean runs).
``resource_leaks``
    No leaked busy containers, pending work items or active episodes at
    quiesce (clean runs).
``replay_determinism``
    Re-replaying every finished orchestration's recorded history yields
    an identical terminal state and identical scheduling actions, twice
    (platforms without history replay — GCP Workflows — contribute no
    replays and trivially pass).

Platform-specific evidence (throttle/shed counters, leak probes,
duplicate-completion scans, replay drivers) comes from each registered
:class:`~repro.platforms.backend.PlatformBackend`, so a new platform is
audited the day it registers.

Violations raise a typed :class:`InvariantViolation` carrying the
evidence trail (deterministic event ordinals, span indices, RNG stream
names), so a failure is reproducible from ``(seed, spec)`` alone and the
verdicts are bit-identical across the serial runner,
:class:`~repro.core.parallel.ParallelRunner` workers and cache replay.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.platforms.backend import get_backend
from repro.platforms.base import round_up
from repro.telemetry import SpanKind

#: Default for specs that leave ``CampaignSpec.audit`` at ``None``.
#: The test suite flips this on via an autouse conftest fixture, so every
#: campaign any test runs is self-checking; the CLI leaves it off unless
#: ``--audit`` (or ``repro audit``) is used.
DEFAULT_AUDIT = False

#: When True (the default), campaign executors raise
#: :class:`InvariantViolation` on a failed audit; ``repro audit`` clears
#: it to collect per-invariant verdicts across a whole sweep instead.
RAISE_ON_VIOLATION = True

#: Stable invariant names, in report order.
INVARIANTS = ("clock_monotonicity", "request_conservation",
              "billing_soundness", "delivery_semantics",
              "resource_leaks", "replay_determinism")

#: Outcome buckets (mirrors :func:`repro.core.overload.classify_error`
#: plus the success path).
BUCKETS = ("succeeded", "throttled", "shed", "failed")

_EPS = 1e-9


def enabled_for(spec_audit: Optional[bool]) -> bool:
    """Resolve a spec's tri-state ``audit`` field against the default."""
    return DEFAULT_AUDIT if spec_audit is None else bool(spec_audit)


@contextmanager
def collect_violations():
    """Within this context, failed audits report instead of raising."""
    global RAISE_ON_VIOLATION
    previous = RAISE_ON_VIOLATION
    RAISE_ON_VIOLATION = False
    try:
        yield
    finally:
        RAISE_ON_VIOLATION = previous


@dataclass(frozen=True)
class CheckResult:
    """One invariant's verdict for one audited run."""

    invariant: str
    passed: bool
    detail: str
    evidence: Tuple[str, ...] = ()


@dataclass(frozen=True)
class AuditReport:
    """Every invariant verdict for one audited testbed run.

    Built exclusively from deterministic quantities (dispatch counts,
    per-queue message ordinals, span list indices, RNG stream names), so
    two runs of the same ``(seed, spec)`` — in any process — produce
    equal reports.
    """

    checks: Tuple[CheckResult, ...]
    dispatches: int
    arrivals: int
    outcomes: Tuple[Tuple[str, int], ...]

    @property
    def violations(self) -> Tuple[CheckResult, ...]:
        return tuple(check for check in self.checks if not check.passed)

    @property
    def passed(self) -> bool:
        return not self.violations

    def verdicts(self) -> List[Tuple[str, bool, str]]:
        """``(invariant, passed, detail)`` rows, in stable order."""
        return [(check.invariant, check.passed, check.detail)
                for check in self.checks]

    def raise_if_violations(self, spec: Optional[Any] = None) -> None:
        """Raise :class:`InvariantViolation` if any invariant failed.

        When the failing :class:`~repro.core.parallel.CampaignSpec` is
        passed, the violation embeds its hash and an inline repro hint,
        so the failure is one command away from reproduction wherever
        it surfaces (worker process, journal, CI log).
        """
        broken = self.violations
        if broken:
            spec_hash = repro_hint = None
            if spec is not None:
                spec_hash = spec.spec_hash()
                repro_hint = spec_repro_hint(spec)
            raise InvariantViolation(broken, self, spec_hash=spec_hash,
                                     repro_hint=repro_hint)


def spec_repro_hint(spec: Any) -> str:
    """A ready-to-paste command reconstructing ``spec``.

    The inline document is the spec's canonical JSON — exactly what
    ``repro fuzz shrink -`` reads from stdin and
    :func:`repro.core.persistence.spec_from_dict` validates — so any
    failure that carries this hint reproduces without the original
    caller's context.
    """
    blob = json.dumps(spec.canonical(), sort_keys=True, default=repr)
    return (f"echo '{blob}' | python -m repro fuzz shrink -")


class InvariantViolation(AssertionError):
    """A runtime invariant failed; carries the full evidence trail.

    Subclasses :class:`AssertionError` so test harnesses treat it as a
    failed assertion, and deliberately none of the exception types the
    :class:`~repro.core.parallel.ParallelRunner` swallows when degrading
    from the process pool — a violation in a worker surfaces in the
    parent verbatim.
    """

    def __init__(self, violations: Tuple[CheckResult, ...],
                 report: Optional[AuditReport] = None,
                 spec_hash: Optional[str] = None,
                 repro_hint: Optional[str] = None):
        self.violations = tuple(violations)
        self.report = report
        self.spec_hash = spec_hash
        self.repro_hint = repro_hint
        lines = []
        for check in self.violations:
            lines.append(f"[{check.invariant}] {check.detail}")
            lines.extend(f"  evidence: {item}" for item in check.evidence)
        if spec_hash:
            lines.append(f"  spec: {spec_hash[:12]}")
        if repro_hint:
            lines.append(f"  repro: {repro_hint}")
        super().__init__("invariant violation\n" + "\n".join(lines))

    def __reduce__(self):
        return (InvariantViolation,
                (self.violations, self.report, self.spec_hash,
                 self.repro_hint))


def merge_reports(reports) -> Dict[str, Tuple[int, int]]:
    """Aggregate reports into ``{invariant: (passes, violations)}``.

    The merged summary the CLI renders after a sweep; reports that are
    ``None`` (un-audited or cache entries predating the auditor) are
    skipped.
    """
    merged: Dict[str, List[int]] = {name: [0, 0] for name in INVARIANTS}
    for report in reports:
        if report is None:
            continue
        for check in report.checks:
            bucket = merged.setdefault(check.invariant, [0, 0])
            bucket[0 if check.passed else 1] += 1
    return {name: (passes, fails)
            for name, (passes, fails) in merged.items()}


class _QueueRecord:
    """Observed lifecycle of one :class:`CloudQueue`'s messages.

    The queue's global message-id counter is process-history-dependent,
    so the record assigns its own per-queue ordinals — deterministic
    evidence for the report.
    """

    __slots__ = ("label", "queue", "next_ordinal", "enqueues", "dequeues",
                 "duplicates", "drops")

    def __init__(self, label: str, queue: Any):
        self.label = label
        self.queue = queue
        self.next_ordinal = 0
        #: ordinal -> enqueue time
        self.enqueues: Dict[int, float] = {}
        #: ordinal -> dequeue times, in order
        self.dequeues: Dict[int, List[float]] = {}
        #: ordinals enqueued as broker duplicates
        self.duplicates: List[int] = []
        #: ordinals the broker dropped (partition windows)
        self.drops: List[int] = []

    def note_enqueue(self, message: Any, duplicate: bool) -> None:
        ordinal = self.next_ordinal
        self.next_ordinal = ordinal + 1
        message._audit_ordinal = ordinal
        self.enqueues[ordinal] = self.queue.env.now
        if duplicate:
            self.duplicates.append(ordinal)

    def note_dequeue(self, message: Any) -> None:
        ordinal = getattr(message, "_audit_ordinal", None)
        self.dequeues.setdefault(ordinal, []).append(self.queue.env.now)

    def note_delete(self, message: Any) -> None:
        # Deletion evidence is implied by quiesce-time queue contents;
        # nothing to record, but the hook stays for symmetry/extension.
        pass

    def note_drop(self, message: Any) -> None:
        ordinal = getattr(message, "_audit_ordinal", None)
        if ordinal is not None:
            self.drops.append(ordinal)


class InvariantAuditor:
    """Accumulates run evidence and checks the invariants at quiesce.

    Install with ``Testbed(..., audit=True)``: the testbed makes the
    auditor the kernel's dispatch monitor *before* building the platform
    stacks, so every :class:`CloudQueue` — including ones deployments
    create later — registers itself, then hands the auditor the stack
    references via :meth:`attach`.
    """

    def __init__(self):
        self.testbed: Any = None
        self.dispatches = 0
        self._last_now = float("-inf")
        self._clock_regressions: List[str] = []
        self._queues: List[_QueueRecord] = []
        self.arrivals = 0
        self.outcomes: Dict[str, int] = {name: 0 for name in BUCKETS}

    # -- kernel monitor (the hot path: keep trivial) -------------------------

    def __call__(self, now: float) -> None:
        self.dispatches += 1
        if now < self._last_now:
            if len(self._clock_regressions) < 8:
                self._clock_regressions.append(
                    f"dispatch #{self.dispatches}: clock moved "
                    f"{self._last_now!r} -> {now!r}")
        else:
            self._last_now = now

    # -- observer registration ------------------------------------------------

    def register_queue(self, queue: Any) -> _QueueRecord:
        """Called by :class:`CloudQueue.__init__`; returns its observer."""
        record = _QueueRecord(
            f"{queue.name}#{len(self._queues)}", queue)
        self._queues.append(record)
        return record

    def attach(self, testbed: Any) -> None:
        """Give the auditor its quiesce-time view of the platform stacks."""
        self.testbed = testbed

    # -- campaign executor hooks ----------------------------------------------

    def note_arrival(self) -> None:
        self.arrivals += 1

    def note_outcome(self, bucket: str) -> None:
        if bucket not in self.outcomes:
            raise ValueError(f"unknown outcome bucket {bucket!r}; "
                             f"choose from {BUCKETS}")
        self.outcomes[bucket] += 1

    # -- finalization ----------------------------------------------------------

    def finalize(self) -> AuditReport:
        """Check every invariant against the quiesced testbed.

        Never raises on a violation — callers decide via
        :meth:`AuditReport.raise_if_violations` (the executors consult
        :data:`RAISE_ON_VIOLATION`).
        """
        checks = (
            self._check_clock(),
            self._check_conservation(),
            self._check_billing(),
            self._check_delivery(),
            self._check_leaks(),
            self._check_replay(),
        )
        return AuditReport(
            checks=checks,
            dispatches=self.dispatches,
            arrivals=self.arrivals,
            outcomes=tuple(sorted(self.outcomes.items())))

    # -- invariants ------------------------------------------------------------

    def _clean_quiesce(self) -> bool:
        """No faults injected and no non-success outcomes: strict checks
        (empty queues, zero busy containers) apply only then — faulted or
        overloaded runs legitimately abandon in-flight work."""
        testbed = self.testbed
        return (testbed is not None and testbed.faults is None
                and self.outcomes["throttled"] == 0
                and self.outcomes["shed"] == 0
                and self.outcomes["failed"] == 0)

    def _check_clock(self) -> CheckResult:
        if self._clock_regressions:
            return CheckResult(
                "clock_monotonicity", False,
                f"clock moved backwards "
                f"{len(self._clock_regressions)} time(s) over "
                f"{self.dispatches} dispatches",
                tuple(self._clock_regressions))
        return CheckResult(
            "clock_monotonicity", True,
            f"{self.dispatches} dispatches, clock monotone")

    def _check_conservation(self) -> CheckResult:
        total = sum(self.outcomes.values())
        evidence: List[str] = []
        if self.arrivals != total:
            buckets = ", ".join(f"{name}={count}" for name, count
                                in sorted(self.outcomes.items()))
            return CheckResult(
                "request_conservation", False,
                f"arrived {self.arrivals} != bucketed {total}",
                (f"buckets: {buckets}",))
        testbed = self.testbed
        if testbed is not None:
            throttle_events = sum(
                get_backend(name).throttle_count(testbed)
                for name in testbed.platform_names)
            shed_events = sum(
                get_backend(name).shed_count(testbed)
                for name in testbed.platform_names)
            if self.outcomes["throttled"] > 0 and throttle_events == 0:
                evidence.append(
                    f"{self.outcomes['throttled']} requests bucketed "
                    "throttled but no platform 429 counter moved")
            if self.outcomes["shed"] > 0 and shed_events == 0:
                evidence.append(
                    f"{self.outcomes['shed']} requests bucketed shed "
                    "but no platform shed counter moved")
        if evidence:
            return CheckResult(
                "request_conservation", False,
                "outcome buckets inconsistent with platform counters",
                tuple(evidence))
        buckets = ", ".join(f"{name}={count}" for name, count
                            in sorted(self.outcomes.items()))
        return CheckResult(
            "request_conservation", True,
            f"arrived {self.arrivals} == {buckets}" if self.arrivals
            else "no tracked arrivals")

    def _check_billing(self) -> CheckResult:
        testbed = self.testbed
        if testbed is None:
            return CheckResult("billing_soundness", True,
                               "no testbed attached")
        evidence: List[str] = []
        total_pairs = 0
        for platform in testbed.platform_names:
            backend = get_backend(platform)
            stack = testbed.stack(platform)
            rules = backend.billing_rules(testbed.calibration(platform))
            spans = [(index, span)
                     for index, span in enumerate(stack.telemetry.spans)
                     if span.kind == SpanKind.EXECUTION and span.closed]
            charges = list(enumerate(stack.billing.compute))
            if len(spans) != len(charges):
                evidence.append(
                    f"{platform}: {len(charges)} compute charges vs "
                    f"{len(spans)} closed execution spans")
                continue
            total_pairs += len(charges)
            spans.sort(key=lambda pair: (pair[1].end, pair[1].name,
                                         pair[1].duration))
            charges.sort(key=lambda pair: (pair[1].time,
                                           pair[1].function_name,
                                           pair[1].raw_duration))
            for (span_index, span), (charge_index, charge) in zip(
                    spans, charges):
                where = (f"{platform} charge[{charge_index}] "
                         f"{charge.function_name!r} ~ span[{span_index}]")
                if charge.function_name != span.name:
                    evidence.append(
                        f"{where}: billed function != span {span.name!r}")
                    continue
                if abs(charge.time - span.end) > _EPS:
                    evidence.append(
                        f"{where}: charged at {charge.time!r} but span "
                        f"ended at {span.end!r}")
                if abs(charge.raw_duration - span.duration) > _EPS:
                    evidence.append(
                        f"{where}: raw {charge.raw_duration!r}s != span "
                        f"duration {span.duration!r}s — billing not "
                        "bounded by observed runtime")
                expected = round_up(max(charge.raw_duration, 1e-9),
                                    rules.granularity_s)
                if rules.min_billed_s:
                    expected = max(expected, rules.min_billed_s)
                span_memory = span.attributes.get("memory_mb")
                if span_memory is not None:
                    if rules.memory_rounding_mb:
                        rounded = int(round_up(span_memory,
                                               rules.memory_rounding_mb))
                        if charge.memory_mb != rounded:
                            evidence.append(
                                f"{where}: billed memory "
                                f"{charge.memory_mb} MB != "
                                f"{rules.memory_rounding_mb} MB-rounded "
                                f"span memory {span_memory} MB")
                    elif charge.memory_mb != span_memory:
                        evidence.append(
                            f"{where}: billed memory {charge.memory_mb} "
                            f"MB != configured {span_memory} MB")
                if abs(charge.billed_duration - expected) > _EPS:
                    evidence.append(
                        f"{where}: billed {charge.billed_duration!r}s, "
                        f"rounding rules say {expected!r}s")
                gb_s = charge.billed_duration * (charge.memory_mb / 1024.0)
                if abs(charge.gb_s - gb_s) > _EPS:
                    evidence.append(
                        f"{where}: gb_s {charge.gb_s!r} != "
                        f"billed × memory = {gb_s!r}")
            # Request-level soundness: throttles are rejected before the
            # request is billed on every platform; platforms that shed
            # *accepted* work after admission (Azure) still bill the
            # request, per the backend's billing rules.
            requests = stack.billing.total_requests()
            executions = len(spans)
            # Executions still in flight when the run ends are billed
            # (they started) but their spans never closed; count them so
            # a frozen-mid-execution straggler is not a false positive.
            in_flight = sum(
                1 for span in stack.telemetry.spans
                if span.kind == SpanKind.EXECUTION and not span.closed)
            shed = (backend.shed_count(testbed)
                    if rules.bills_shed_requests else 0)
            expected_requests = executions + in_flight + shed
            if requests != expected_requests:
                evidence.append(
                    f"{platform}: {requests} billed requests != "
                    f"{expected_requests} (executions {executions}"
                    + (f" + in-flight {in_flight}" if in_flight else "")
                    + (f" + sheds {shed}" if shed else "")
                    + ") — throttled/shed work must stay unbilled")
        if evidence:
            return CheckResult(
                "billing_soundness", False,
                "billed charges diverge from execution spans",
                tuple(evidence[:16]))
        return CheckResult(
            "billing_soundness", True,
            f"{total_pairs} charges each map to exactly one execution "
            "span; rounding and request accounting consistent")

    def _check_delivery(self) -> CheckResult:
        testbed = self.testbed
        plan = (testbed.faults.plan
                if testbed is not None and testbed.faults is not None
                else None)
        evidence: List[str] = []
        total_messages = 0
        for record in self._queues:
            total_messages += record.next_ordinal
            known = record.enqueues
            for ordinal, times in sorted(record.dequeues.items()):
                if ordinal is None or ordinal not in known:
                    evidence.append(
                        f"queue {record.label}: dequeued a message never "
                        "enqueued")
                    continue
                visibility = record.queue.visibility_timeout
                for earlier, later in zip(times, times[1:]):
                    if later - earlier < visibility - _EPS:
                        evidence.append(
                            f"queue {record.label}: message #{ordinal} "
                            f"redelivered {later - earlier:.3f}s after "
                            f"its dequeue, inside the {visibility:.0f}s "
                            "visibility timeout")
            if record.duplicates and (
                    plan is None
                    or plan.queue_duplication_probability <= 0):
                evidence.append(
                    f"queue {record.label}: {len(record.duplicates)} "
                    "broker duplicates without a fault plan permitting "
                    f"them (stream faults.queue.{record.queue.name})")
            if record.drops and (
                    plan is None
                    or plan.partition_drop_probability <= 0):
                evidence.append(
                    f"queue {record.label}: {len(record.drops)} "
                    "broker-dropped message(s) without a fault plan "
                    "permitting partition drops")
            if self._clean_quiesce() and record.queue._messages:
                evidence.append(
                    f"queue {record.label}: "
                    f"{len(record.queue._messages)} orphaned message(s) "
                    "at quiesce of a clean run")
        if testbed is not None:
            for name in testbed.platform_names:
                evidence.extend(
                    get_backend(name).delivery_evidence(testbed))
        if evidence:
            return CheckResult(
                "delivery_semantics", False,
                "queue delivery diverged from at-least-once + dedupe "
                "semantics", tuple(evidence[:16]))
        return CheckResult(
            "delivery_semantics", True,
            f"{total_messages} messages across {len(self._queues)} "
            "queues delivered consistently")

    def _check_leaks(self) -> CheckResult:
        testbed = self.testbed
        if testbed is None or not self._clean_quiesce():
            return CheckResult(
                "resource_leaks", True,
                "skipped (faulted or overloaded run: abandoned "
                "in-flight work is legitimate)")
        evidence: List[str] = []
        for name in testbed.platform_names:
            evidence.extend(get_backend(name).leak_evidence(testbed))
        if evidence:
            return CheckResult(
                "resource_leaks", False,
                "resources leaked past quiesce", tuple(evidence))
        return CheckResult("resource_leaks", True,
                           "no busy containers, pending work or active "
                           "episodes at quiesce")

    def _check_replay(self) -> CheckResult:
        testbed = self.testbed
        if testbed is None:
            return CheckResult("replay_determinism", True,
                               "no testbed attached")
        evidence: List[str] = []
        replayed = 0
        for name in testbed.platform_names:
            count, platform_evidence = (
                get_backend(name).replay_check(testbed))
            replayed += count
            evidence.extend(platform_evidence)
        if evidence:
            return CheckResult(
                "replay_determinism", False,
                "history replay diverged from the recorded outcome",
                tuple(evidence[:16]))
        return CheckResult(
            "replay_determinism", True,
            f"{replayed} finished orchestration(s) replayed "
            "deterministically")
