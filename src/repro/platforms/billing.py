"""Unified billing meter.

Both platforms bill compute (GB-s), requests and stateful transactions
into one :class:`BillingMeter` so that the evaluation harness can compare
providers on identical terms — the paper's "price calculated without the
free tier discount" convention (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class ComputeCharge:
    """One billable function execution."""

    time: float
    function_name: str
    raw_duration: float       # actual handler duration in seconds
    billed_duration: float    # after platform rounding rules
    memory_mb: int            # memory the platform bills on
    gb_s: float               # billed_duration × memory_gb
    replay: bool = False      # True for orchestrator replay episodes


@dataclass(frozen=True)
class RequestCharge:
    """One billable invocation request."""

    time: float
    function_name: str


class BillingMeter:
    """Accumulates compute and request charges for one deployment."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self.compute: List[ComputeCharge] = []
        self.requests: List[RequestCharge] = []

    def charge_compute(self, function_name: str, raw_duration: float,
                       billed_duration: float, memory_mb: int,
                       replay: bool = False) -> ComputeCharge:
        """Record one function execution's compute charge."""
        charge = ComputeCharge(
            time=self._clock(), function_name=function_name,
            raw_duration=raw_duration, billed_duration=billed_duration,
            memory_mb=memory_mb,
            gb_s=billed_duration * (memory_mb / 1024.0), replay=replay)
        self.compute.append(charge)
        return charge

    def charge_request(self, function_name: str) -> RequestCharge:
        """Record one invocation request."""
        charge = RequestCharge(time=self._clock(), function_name=function_name)
        self.requests.append(charge)
        return charge

    # -- aggregation -----------------------------------------------------------

    def total_gb_s(self, replay: Optional[bool] = None) -> float:
        """Total billed GB-s, optionally restricted to (non-)replay."""
        return sum(charge.gb_s for charge in self.compute
                   if replay is None or charge.replay == replay)

    def total_requests(self) -> int:
        return len(self.requests)

    def gb_s_by_function(self) -> Dict[str, float]:
        """GB-s grouped by function name."""
        totals: Dict[str, float] = {}
        for charge in self.compute:
            totals[charge.function_name] = (
                totals.get(charge.function_name, 0.0) + charge.gb_s)
        return totals

    def execution_count(self, function_name: Optional[str] = None) -> int:
        return sum(1 for charge in self.compute
                   if function_name is None
                   or charge.function_name == function_name)

    def reset(self) -> None:
        """Drop all charges (between experiment iterations)."""
        self.compute.clear()
        self.requests.clear()

    def __repr__(self) -> str:
        return (f"BillingMeter(compute={len(self.compute)}, "
                f"requests={len(self.requests)}, gb_s={self.total_gb_s():.3f})")
