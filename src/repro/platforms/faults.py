"""Fault injection: crash-prone handlers for reliability testing.

Serverless platforms run on preemptible infrastructure; containers die
mid-execution.  The durable programming model's whole value proposition
is surviving that.  This module wraps handlers with configurable failure
behaviour so tests and benchmarks can exercise the recovery paths:
framework retries, orchestration-level error handling, and event-sourced
resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional


class ContainerCrash(RuntimeError):
    """The execution environment died mid-run."""


@dataclass
class FaultInjector:
    """Wraps handlers so they crash with probability ``crash_probability``.

    A crashed invocation consumes its execution time (time spent before a
    container dies is spent — and on most platforms billed) but produces
    no result; the caller sees :class:`ContainerCrash`.

    >>> injector = FaultInjector(crash_probability=0.0)
    >>> injector.crashes
    0
    """

    crash_probability: float = 0.1
    #: stream name used to draw crash decisions (stable across runs)
    stream: str = "faults"
    crashes: int = field(default=0, init=False)
    invocations: int = field(default=0, init=False)

    def __post_init__(self):
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ValueError("crash_probability must lie in [0, 1]")

    def wrap(self, handler: Callable[..., Generator],
             name: Optional[str] = None) -> Callable[..., Generator]:
        """Return a crash-prone version of ``handler``."""
        injector = self

        def faulty(ctx, event) -> Generator:
            injector.invocations += 1
            rng = ctx.rng
            if rng.random() < injector.crash_probability:
                injector.crashes += 1
                # The time is spent (and billed); the result is lost.
                result = yield from handler(ctx, event)
                del result
                raise ContainerCrash(
                    "container crashed during "
                    f"{name or getattr(handler, '__name__', 'handler')}")
            result = yield from handler(ctx, event)
            return result

        faulty.__name__ = f"faulty_{name or getattr(handler, '__name__', 'h')}"
        return faulty

    @property
    def observed_crash_rate(self) -> float:
        """Fraction of invocations that crashed so far."""
        if self.invocations == 0:
            return 0.0
        return self.crashes / self.invocations
