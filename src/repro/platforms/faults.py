"""Fault injection: deterministic chaos for reliability campaigns.

Serverless platforms run on preemptible infrastructure; containers die
mid-execution, messages arrive late or twice, whole hosts disappear.
The durable programming model's value proposition is surviving that, and
the paper's recovery mechanisms (Step Functions Retry/Catch, Durable
Functions event sourcing) exist precisely for these scenarios.

This module provides two layers:

* :class:`FaultPlan` — a declarative, frozen description of which faults
  to inject: transient handler exceptions, container crashes at a drawn
  *fraction* of the invocation's runtime, invocation stragglers (latency
  multipliers), queue message delay/duplication (at-least-once delivery),
  scheduled host crashes, and *correlated* failures — zone-outage windows
  (explicit or drawn from the ``faults.outage`` stream) during which the
  platform either hard-crashes (``outage_mode="crash"``: warm pools drop
  and in-window invocations die mid-run) or degrades *gray*
  (``outage_mode="gray"``: latency multipliers plus elevated error
  rates), with optional storage brownouts (extra delivery delay) and
  partial network partitions (the broker silently dropping messages)
  scoped to the same windows.  Plans round-trip through sorted key/value
  items so they can ride inside a hashable
  :class:`~repro.core.parallel.CampaignSpec`.
* :class:`FaultInjector` — the runtime: wraps handlers, draws every fault
  decision from named :class:`~repro.sim.rng.RandomStreams` streams
  (``faults.fn.<name>``, ``faults.queue.<name>``, ``faults.outage``) so
  faulted campaigns are bit-identical given ``(seed, plan)``, and
  accounts what the chaos cost (crashes, retries, wasted GB-s billed to
  doomed attempts, browned-out and partition-dropped messages).

The zero-argument back-compat constructor
``FaultInjector(crash_probability=p)`` keeps the original single-knob
API used by tests and benchmarks: crash decisions then draw from the
invocation's own ``ctx.rng``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.sim.kernel import Timeout


class ContainerCrash(RuntimeError):
    """The execution environment died mid-run."""


class TransientFault(RuntimeError):
    """A one-off handler exception (the platform would retry this)."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of every fault mode to inject.

    All probabilities are per-invocation (or per-message for the queue
    modes) and drawn from deterministic per-target RNG streams.  A plan
    with every probability at zero and no host crashes is *disabled* —
    the platforms behave bit-identically to a fault-free run.

    The ``retry_*`` fields do not inject faults; they synthesize a
    default retry policy on workflow states/activities that configured
    none, so reliability campaigns measure the *price* of absorbing the
    chaos rather than just failing fast.  ``retry_max_attempts`` counts
    total attempts (1 disables synthesis).
    """

    #: probability a wrapped handler crashes mid-run
    crash_probability: float = 0.0
    #: the crash point is drawn uniformly in this fraction of the
    #: invocation's (last observed) runtime
    crash_fraction_min: float = 0.0
    crash_fraction_max: float = 1.0
    #: probability a wrapped handler raises before doing any work
    error_probability: float = 0.0
    #: probability an invocation runs ``straggler_factor`` times slower
    straggler_probability: float = 0.0
    straggler_factor: float = 4.0
    #: probability an enqueued message is delayed by ``queue_delay_s``
    queue_delay_probability: float = 0.0
    queue_delay_s: float = 5.0
    #: probability an enqueued message is delivered twice
    queue_duplication_probability: float = 0.0
    #: whether the task hub dedupes duplicate completion messages while
    #: duplication is active.  Disabling it with duplication enabled
    #: models a broken at-least-once consumer — double-processed (and
    #: double-billed) completions the invariant auditor must catch.
    completion_dedupe: bool = True
    #: synthesized default retry policy (total attempts; <2 disables)
    retry_max_attempts: int = 0
    retry_interval_s: float = 2.0
    retry_backoff: float = 2.0
    #: absolute simulated times at which the host crashes
    host_crash_times: Tuple[float, ...] = ()
    #: function names the handler faults apply to (empty = all)
    targets: Tuple[str, ...] = ()
    #: explicit correlated-outage windows as ``(start, duration)`` pairs
    #: in absolute simulated seconds
    outage_windows: Tuple[Tuple[float, float], ...] = ()
    #: number of additional windows drawn from the ``faults.outage``
    #: stream: starts uniform in ``[0, outage_horizon_s)``, each lasting
    #: ``outage_duration_s`` (overlaps merge deterministically)
    outage_count: int = 0
    outage_horizon_s: float = 0.0
    outage_duration_s: float = 0.0
    #: what an outage window does to the zone: ``"crash"`` drops every
    #: platform's warm pools at window start and kills in-window
    #: invocations mid-run; ``"gray"`` degrades instead of crashing
    outage_mode: str = "crash"
    #: gray degradation: in-window latency multiplier and elevated
    #: transient-error rate on wrapped handlers
    gray_latency_factor: float = 1.0
    gray_error_probability: float = 0.0
    #: storage/queue brownout: extra visibility delay on messages
    #: enqueued during an outage window
    brownout_delay_s: float = 0.0
    #: partial network partition: probability the broker silently drops
    #: a message enqueued during an outage window (the client call still
    #: succeeds and is metered)
    partition_drop_probability: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "host_crash_times",
                           tuple(sorted(float(t)
                                        for t in self.host_crash_times)))
        object.__setattr__(self, "targets", tuple(self.targets))
        windows = []
        for window in self.outage_windows:
            try:
                start, duration = window
            except (TypeError, ValueError):
                raise ValueError(
                    f"outage_windows entries are (start, duration) "
                    f"pairs, got {window!r}") from None
            windows.append((float(start), float(duration)))
        windows.sort()
        object.__setattr__(self, "outage_windows", tuple(windows))
        for name in ("crash_probability", "error_probability",
                     "straggler_probability", "queue_delay_probability",
                     "queue_duplication_probability",
                     "gray_error_probability",
                     "partition_drop_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if not (0.0 <= self.crash_fraction_min
                <= self.crash_fraction_max <= 1.0):
            raise ValueError(
                "crash fractions must satisfy 0 <= min <= max <= 1")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.queue_delay_s < 0:
            raise ValueError("queue_delay_s must be non-negative")
        if self.retry_max_attempts < 0:
            raise ValueError("retry_max_attempts must be non-negative")
        if self.retry_interval_s <= 0:
            raise ValueError("retry_interval_s must be positive")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if any(t < 0 for t in self.host_crash_times):
            raise ValueError("host_crash_times must be non-negative")
        if len(set(self.host_crash_times)) != len(self.host_crash_times):
            raise ValueError(
                "host_crash_times must not repeat: overlapping "
                "host-crash schedules would crash the same host twice "
                "in the same instant")
        for start, duration in self.outage_windows:
            if start < 0:
                raise ValueError("outage window starts must be "
                                 f"non-negative, got {start}")
            if duration <= 0:
                raise ValueError("outage window durations must be "
                                 f"positive, got {duration}")
        for (start, duration), (next_start, _) in zip(
                self.outage_windows, self.outage_windows[1:]):
            if next_start < start + duration:
                raise ValueError(
                    f"outage_windows overlap: window starting at "
                    f"{next_start} begins inside the window "
                    f"[{start}, {start + duration})")
        if self.outage_count < 0:
            raise ValueError("outage_count must be non-negative")
        if self.outage_horizon_s < 0 or self.outage_duration_s < 0:
            raise ValueError(
                "outage horizon/duration must be non-negative")
        if self.outage_count > 0 and (self.outage_horizon_s <= 0
                                      or self.outage_duration_s <= 0):
            raise ValueError(
                "drawn outages need outage_horizon_s > 0 and "
                "outage_duration_s > 0")
        if self.outage_mode not in ("crash", "gray"):
            raise ValueError(
                f"outage_mode must be 'crash' or 'gray', "
                f"got {self.outage_mode!r}")
        if self.gray_latency_factor < 1.0:
            raise ValueError("gray_latency_factor must be >= 1")
        if self.brownout_delay_s < 0:
            raise ValueError("brownout_delay_s must be non-negative")

    # -- activation --------------------------------------------------------------

    @property
    def handler_faults(self) -> bool:
        """Any *independent* per-invocation fault mode active?"""
        return (self.crash_probability > 0 or self.error_probability > 0
                or self.straggler_probability > 0)

    @property
    def outage_faults(self) -> bool:
        """Any correlated outage windows declared or drawn?"""
        return bool(self.outage_windows) or self.outage_count > 0

    @property
    def wraps_handlers(self) -> bool:
        """Should the platforms wrap handlers at registration time?

        True for independent handler faults *and* for outage windows:
        both modes act at invocation time inside the wrapped handler
        (crash-mode windows kill in-window runs, gray-mode windows slow
        and error them).
        """
        return self.handler_faults or self.outage_faults

    @property
    def queue_faults(self) -> bool:
        """Any per-message fault mode active?"""
        return (self.queue_delay_probability > 0
                or self.queue_duplication_probability > 0
                or (self.outage_faults
                    and (self.brownout_delay_s > 0
                         or self.partition_drop_probability > 0)))

    @property
    def enabled(self) -> bool:
        """Does this plan inject anything at all?"""
        return (self.wraps_handlers or self.queue_faults
                or bool(self.host_crash_times))

    def applies_to(self, name: str) -> bool:
        """Do the handler faults target function ``name``?"""
        return not self.targets or name in self.targets

    # -- spec round-trip -----------------------------------------------------------

    def to_items(self) -> Tuple[Tuple[str, Any], ...]:
        """Non-default fields as sorted key/value pairs (spec-friendly)."""
        items: List[Tuple[str, Any]] = []
        for plan_field in fields(self):
            value = getattr(self, plan_field.name)
            default = plan_field.default
            if default is not None and value == default:
                continue
            if plan_field.name in ("host_crash_times", "targets",
                                   "outage_windows") and not value:
                continue
            items.append((plan_field.name, value))
        return tuple(sorted(items))

    @classmethod
    def from_items(cls, items: Iterable[Tuple[str, Any]]) -> "FaultPlan":
        """Build a plan from key/value pairs, rejecting unknown fields."""
        known = {plan_field.name for plan_field in fields(cls)}
        payload: Dict[str, Any] = {}
        for name, value in items:
            if name not in known:
                raise ValueError(
                    f"unknown FaultPlan field {name!r}; "
                    f"choose from {sorted(known)}")
            if isinstance(value, (list, tuple)):
                value = tuple(tuple(item)
                              if isinstance(item, (list, tuple)) else item
                              for item in value)
            payload[str(name)] = value
        return cls(**payload)


@dataclass
class FaultInjector:
    """Runtime fault injection plus chaos accounting.

    ``FaultInjector(crash_probability=p)`` is the original single-knob
    API (crash decisions drawn from ``ctx.rng``); passing ``plan`` and
    ``streams`` activates the full :class:`FaultPlan` with deterministic
    per-target streams.

    A crashed invocation spends (and the platform bills) the partial
    execution time up to the drawn crash point, but produces no result;
    the caller sees :class:`ContainerCrash`.

    >>> injector = FaultInjector(crash_probability=0.0)
    >>> injector.crashes
    0
    """

    crash_probability: float = 0.1
    #: stream name used to draw crash decisions (stable across runs)
    stream: str = "faults"
    plan: Optional[FaultPlan] = None
    streams: Any = None
    invocations: int = field(default=0, init=False)
    crashes: int = field(default=0, init=False)
    transient_errors: int = field(default=0, init=False)
    stragglers: int = field(default=0, init=False)
    delayed_messages: int = field(default=0, init=False)
    duplicated_messages: int = field(default=0, init=False)
    host_crashes: int = field(default=0, init=False)
    #: retries the platforms performed while this injector was attached
    platform_retries: int = field(default=0, init=False)
    #: compute spent on invocations that then crashed
    wasted_compute_s: float = field(default=0.0, init=False)
    wasted_gb_s: float = field(default=0.0, init=False)
    host_recovery_times: List[float] = field(default_factory=list, init=False)
    #: correlated-outage accounting
    outage_host_drops: int = field(default=0, init=False)
    outage_crashes: int = field(default=0, init=False)
    gray_slowdowns: int = field(default=0, init=False)
    gray_errors: int = field(default=0, init=False)
    browned_out_messages: int = field(default=0, init=False)
    dropped_messages: int = field(default=0, init=False)

    def __post_init__(self):
        if self.plan is None:
            if not 0.0 <= self.crash_probability <= 1.0:
                raise ValueError("crash_probability must lie in [0, 1]")
            self.plan = FaultPlan(crash_probability=self.crash_probability)
        else:
            self.crash_probability = self.plan.crash_probability
        #: last observed successful runtime per wrapped function, used to
        #: place crash points as a fraction of a *known* duration
        self._runtimes: Dict[str, float] = {}
        #: materialized absolute outage windows as (start, end) pairs
        self.outage_windows: Tuple[Tuple[float, float], ...] = (
            self._materialize_windows())

    # -- correlated outage windows -------------------------------------------------

    def _materialize_windows(self) -> Tuple[Tuple[float, float], ...]:
        """Resolve the plan's outage windows to absolute (start, end).

        Explicit windows are taken verbatim; drawn windows come from the
        ``faults.outage`` stream (starts uniform over the horizon), so
        the schedule is a pure function of ``(seed, plan)``.  Overlaps
        among drawn windows merge into one longer window.
        """
        plan = self.plan
        windows = [(start, start + duration)
                   for start, duration in plan.outage_windows]
        if plan.outage_count > 0 and self.streams is not None:
            rng = self.streams.get("faults.outage")
            starts = sorted(float(rng.random()) * plan.outage_horizon_s
                            for _ in range(plan.outage_count))
            windows.extend((start, start + plan.outage_duration_s)
                           for start in starts)
        windows.sort()
        merged: List[Tuple[float, float]] = []
        for start, end in windows:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return tuple(merged)

    def in_outage(self, now: float) -> bool:
        """Is ``now`` inside any materialized outage window?"""
        return any(start <= now < end
                   for start, end in self.outage_windows)

    @property
    def crash_outage_starts(self) -> Tuple[float, ...]:
        """Window starts at which warm infrastructure drops (crash mode)."""
        if self.plan.outage_mode != "crash":
            return ()
        return tuple(start for start, _ in self.outage_windows)

    # -- runtime knowledge --------------------------------------------------------

    def record_runtime(self, name: str, seconds: float) -> None:
        """Remember how long ``name`` runs (crash points scale off this)."""
        if seconds > 0:
            self._runtimes[name] = seconds

    def _rng_for(self, ctx, name: str):
        if self.streams is not None:
            return self.streams.get(f"faults.fn.{name}")
        return ctx.rng

    # -- handler wrapping ---------------------------------------------------------

    def wrap(self, handler: Callable[..., Generator],
             name: Optional[str] = None) -> Callable[..., Generator]:
        """Return a fault-prone version of ``handler``."""
        injector = self
        plan = self.plan
        label = name or getattr(handler, "__name__", "handler")

        def faulty(ctx, event) -> Generator:
            injector.invocations += 1
            rng = injector._rng_for(ctx, label)
            if (plan.error_probability > 0
                    and rng.random() < plan.error_probability):
                injector.transient_errors += 1
                raise TransientFault(f"transient fault in {label}")
            crash_fraction = None
            if (plan.crash_probability > 0
                    and rng.random() < plan.crash_probability):
                injector.crashes += 1
                span = plan.crash_fraction_max - plan.crash_fraction_min
                crash_fraction = (plan.crash_fraction_min
                                  + rng.random() * span)
            if (plan.straggler_probability > 0
                    and rng.random() < plan.straggler_probability):
                injector.stragglers += 1
                ctx.cpu_factor *= plan.straggler_factor
            if injector.in_outage(ctx.env.now):
                if plan.outage_mode == "gray":
                    if plan.gray_latency_factor > 1.0:
                        injector.gray_slowdowns += 1
                        ctx.cpu_factor *= plan.gray_latency_factor
                    if (plan.gray_error_probability > 0
                            and rng.random()
                            < plan.gray_error_probability):
                        injector.gray_errors += 1
                        raise TransientFault(
                            f"gray degradation error in {label}")
                elif crash_fraction is None:
                    # Crash-mode window: every in-window invocation dies
                    # at a drawn fraction of its runtime.
                    injector.outage_crashes += 1
                    span = (plan.crash_fraction_max
                            - plan.crash_fraction_min)
                    crash_fraction = (plan.crash_fraction_min
                                      + rng.random() * span)
            if crash_fraction is None:
                started = ctx.env.now
                result = yield from handler(ctx, event)
                injector.record_runtime(label, ctx.env.now - started)
                return result
            yield from injector._crash_at_fraction(
                ctx, handler, event, label, crash_fraction)

        faulty.__name__ = f"faulty_{label}"
        return faulty

    def _crash_at_fraction(self, ctx, handler, event, label: str,
                           fraction: float) -> Generator:
        """Drive ``handler`` until ``fraction`` of its expected runtime,
        then die.

        The crash point is ``fraction`` × the function's last observed
        runtime; until one is known the handler runs to completion and
        the result is discarded (the whole duration is the crash point).
        Time spent before the crash is spent — and billed — like on a
        real platform.
        """
        env = ctx.env
        started = env.now
        known = self._runtimes.get(label)
        deadline = (started + fraction * known if known is not None
                    else float("inf"))
        gen = handler(ctx, event)
        try:
            item = next(gen)
            while True:
                if isinstance(item, Timeout) and \
                        env.now + item.delay >= deadline:
                    # The handler would sleep past the crash point:
                    # sleep only up to it.  The abandoned timeout pops
                    # harmlessly (no callbacks were registered on it).
                    remaining = deadline - env.now
                    if remaining > 0:
                        yield env.timeout(remaining)
                    break
                try:
                    outcome = yield item
                except BaseException as interrupt:
                    # Platform-level interrupts (execution timeouts) are
                    # forwarded; if the handler does not absorb them they
                    # propagate and the platform accounts the failure.
                    item = gen.throw(interrupt)
                    continue
                if env.now >= deadline:
                    break
                item = gen.send(outcome)
        except StopIteration:
            # Completed before the crash point fired: the container still
            # dies and the result is lost.
            self.record_runtime(label, env.now - started)
        finally:
            gen.close()
        elapsed = env.now - started
        self.wasted_compute_s += elapsed
        self.wasted_gb_s += elapsed * ctx.spec.billing_memory_mb / 1024.0
        raise ContainerCrash(f"container crashed during {label}")

    # -- queue faults --------------------------------------------------------------

    def draw_queue_faults(self, queue_name: str) -> Tuple[float, bool]:
        """``(delay_s, duplicate)`` for one enqueued message.

        Returns ``(0.0, False)`` unless queue faults are active and the
        injector has deterministic streams to draw from.
        """
        plan = self.plan
        if self.streams is None or not plan.queue_faults:
            return 0.0, False
        rng = self.streams.get(f"faults.queue.{queue_name}")
        delay = 0.0
        duplicate = False
        if (plan.queue_delay_probability > 0
                and rng.random() < plan.queue_delay_probability):
            delay = plan.queue_delay_s
            self.delayed_messages += 1
        if (plan.queue_duplication_probability > 0
                and rng.random() < plan.queue_duplication_probability):
            duplicate = True
            self.duplicated_messages += 1
        return delay, duplicate

    def draw_message_chaos(self, queue_name: str,
                           now: float) -> Tuple[float, bool, bool]:
        """``(delay_s, duplicate, dropped)`` for one enqueued message.

        The independent delay/duplication draws always happen (stream
        alignment with :meth:`draw_queue_faults`); brownout delay and
        partition drops apply only while ``now`` sits inside an outage
        window.  A dropped message supersedes delay and duplication.
        """
        plan = self.plan
        delay, duplicate = self.draw_queue_faults(queue_name)
        if self.streams is None or not self.in_outage(now):
            return delay, duplicate, False
        if plan.brownout_delay_s > 0:
            delay += plan.brownout_delay_s
            self.browned_out_messages += 1
        if plan.partition_drop_probability > 0:
            rng = self.streams.get(f"faults.queue.{queue_name}")
            if rng.random() < plan.partition_drop_probability:
                self.dropped_messages += 1
                return 0.0, False, True
        return delay, duplicate, False

    # -- observability -------------------------------------------------------------

    @property
    def observed_crash_rate(self) -> float:
        """Fraction of invocations that crashed so far."""
        if self.invocations == 0:
            return 0.0
        return self.crashes / self.invocations
