"""Shared platform abstractions and calibration constants.

:mod:`repro.platforms.base` defines the function/handler contract common to
both cloud simulations; :mod:`repro.platforms.calibration` holds every
latency distribution and price constant, each documented against the paper
measurement it reproduces; :mod:`repro.platforms.billing` is the unified
cost meter both platforms bill into.
"""

from repro.platforms.base import (
    FunctionContext,
    FunctionSpec,
    FunctionTimeout,
    InvocationResult,
    PayloadLimitExceeded,
    WorkModel,
)
from repro.platforms.billing import BillingMeter, ComputeCharge, RequestCharge
from repro.platforms.calibration import (
    AWSCalibration,
    AzureCalibration,
    default_aws_calibration,
    default_azure_calibration,
)

__all__ = [
    "AWSCalibration",
    "AzureCalibration",
    "BillingMeter",
    "ComputeCharge",
    "FunctionContext",
    "FunctionSpec",
    "FunctionTimeout",
    "InvocationResult",
    "PayloadLimitExceeded",
    "RequestCharge",
    "WorkModel",
    "default_aws_calibration",
    "default_azure_calibration",
]
