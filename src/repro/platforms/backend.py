"""Pluggable platform backends: one interface, N simulated clouds.

The paper compares exactly two stateful-workflow stacks; the testbed
originally hard-coded both.  This module is the seam that removes that
limit: a :class:`PlatformBackend` bundles everything the harness needs
to know about one cloud —

* identity (``name``) and its calibration dataclass,
* how to build the platform's service stack on a testbed,
* how to deploy and invoke functions and compiled workflows,
* the billing rules the invariant auditor checks charges against,
* the admission/shedding counters overload campaigns read,
* the cost-breakdown recipe, leak/replay evidence, and host-crash
  behaviour for fault campaigns.

Backends self-register into a process-global registry; the testbed, the
campaign executors, the auditor and the CLI all iterate
:func:`registered_backends` instead of naming platforms.  Adding a new
cloud (the ROADMAP's OpenWhisk item) is one module subclassing
:class:`PlatformBackend` plus one :func:`register_backend` call — the
backend-parametrized contract suite (``tests/platforms/
test_backend_contract.py``) then covers it automatically.  See
DESIGN.md's "Adding a platform backend" walkthrough.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

#: Modules that provide the built-in backends; imported lazily the first
#: time the registry is read, so ``repro.platforms`` stays import-light
#: and free of cycles.
_BUILTIN_MODULES = ("repro.aws.backend", "repro.azure.backend",
                    "repro.gcp.backend")

_REGISTRY: Dict[str, "PlatformBackend"] = {}
_BUILTINS_LOADED = False


@dataclass(frozen=True)
class BillingRules:
    """How one platform rounds charges — the auditor's rulebook.

    ``memory_rounding_mb`` of ``None`` means compute is billed on the
    exact memory recorded in the execution span (AWS/GCP bill configured
    memory); a value means the span's measured memory is rounded up to
    that multiple first (Azure's 128 MB buckets).
    ``bills_shed_requests`` marks platforms whose request charge lands
    before deadline shedding, so billed requests exceed executions by
    the shed count.
    """

    granularity_s: float
    min_billed_s: float = 0.0
    memory_rounding_mb: Optional[int] = None
    bills_shed_requests: bool = False


class PlatformBackend(abc.ABC):
    """Everything the harness needs to drive one simulated cloud."""

    #: registry key and the prefix of ``"<name>.field"`` override keys
    name: str = ""
    #: deployment-variant name prefix (``"AWS-Step"`` → ``"AWS"``),
    #: used by the CLI's ``--platforms`` filter
    variant_prefix: str = ""

    # -- calibration -----------------------------------------------------------

    @abc.abstractmethod
    def calibration_type(self) -> type:
        """The platform's calibration dataclass."""

    @abc.abstractmethod
    def default_calibration(self) -> Any:
        """A fresh calibration with the documented defaults."""

    # -- stack construction ----------------------------------------------------

    @abc.abstractmethod
    def build(self, testbed: Any, calibration: Any) -> Any:
        """Build the platform's services on ``testbed``.

        Returns the :class:`~repro.core.testbed.PlatformStack` and sets
        the platform's service attributes (``testbed.lambdas``,
        ``testbed.durable``, ...) for deployments to use.  Must not
        schedule kernel events — a freshly built testbed is quiescent.
        """

    @abc.abstractmethod
    def price_model(self, calibration: Any) -> Any:
        """The platform's price model for ``calibration``."""

    # -- deploy / invoke (the conformance surface) ------------------------------

    @abc.abstractmethod
    def register_function(self, testbed: Any, spec: Any) -> Any:
        """Deploy one function; returns the (possibly adjusted) spec."""

    @abc.abstractmethod
    def invoke_function(self, testbed: Any, name: str,
                        event: Any) -> Generator:
        """Invoke a deployed function; yields an ``InvocationResult``."""

    @abc.abstractmethod
    def deploy_workflow(self, testbed: Any, workflow: Any) -> str:
        """Compile and deploy a :class:`~repro.core.workflow.Workflow`."""

    @abc.abstractmethod
    def invoke_workflow(self, testbed: Any, name: str,
                        payload: Any) -> Generator:
        """Run one workflow execution; returns ``(status, output)`` with
        ``status`` in ``("SUCCEEDED", "FAILED")``."""

    # -- limits ----------------------------------------------------------------

    @abc.abstractmethod
    def payload_limit_bytes(self, calibration: Any) -> int:
        """Byte limit on values crossing the workflow boundary."""

    # -- billing / accounting hooks (audit + overload) --------------------------

    @abc.abstractmethod
    def billing_rules(self, calibration: Any) -> BillingRules:
        """Rounding rules the auditor validates compute charges against."""

    @abc.abstractmethod
    def throttle_count(self, testbed: Any) -> int:
        """Platform-level 429 rejections so far."""

    def shed_count(self, testbed: Any) -> int:
        """Accepted requests dropped past a wait budget (0 if the
        platform has no shedding path)."""
        return 0

    def retry_count(self, testbed: Any) -> int:
        """Invocation re-attempts the platform performed absorbing 429s
        (0 if the platform never retries on its own)."""
        return 0

    # -- cost reporting ---------------------------------------------------------

    @abc.abstractmethod
    def cost_breakdown(self, testbed: Any) -> Dict[str, Any]:
        """Raw numbers for a :class:`~repro.core.costs.CostReport`:
        ``gb_s``, ``compute_cost``, ``transaction_cost``,
        ``transaction_count`` and ``replay_gb_s``."""

    # -- audit evidence ----------------------------------------------------------

    def leak_evidence(self, testbed: Any) -> List[str]:
        """Resources still held at the quiesce of a clean run."""
        return []

    def delivery_evidence(self, testbed: Any) -> List[str]:
        """Platform-specific delivery-semantics violations."""
        return []

    def replay_check(self, testbed: Any) -> Tuple[int, List[str]]:
        """``(replayed_count, evidence)`` for replay determinism; the
        default covers platforms without history replay."""
        return 0, []

    # -- mitigation -------------------------------------------------------------

    def mitigated_invoke(self, testbed: Any, name: str, event: Any,
                         policy: Any = None) -> Generator:
        """Invoke a function through a client-side mitigation policy.

        Concrete on the ABC so every backend — current and future —
        gets circuit breaking, hedging and adaptive deadlines for free.
        Engines are cached per ``(backend, function, policy)`` on the
        testbed, so breaker state and latency estimates persist across
        invocations the way a real client library's would.  With no
        policy (or a no-op one) this is a plain :meth:`invoke_function`.
        """
        from repro.core.mitigation import MitigationEngine, MitigationPolicy
        if policy is None:
            policy = MitigationPolicy()
        engines = getattr(testbed, "_mitigation_engines", None)
        if engines is None:
            engines = testbed._mitigation_engines = {}
        key = (self.name, name, policy)
        engine = engines.get(key)
        if engine is None:
            stack = testbed.stack(self.name)
            engine = engines[key] = MitigationEngine(
                policy=policy, env=testbed.env, streams=testbed.streams,
                label=f"{self.name}.{name}",
                gb_s_probe=stack.billing.total_gb_s)
        result = yield from engine.call(
            lambda: self.invoke_function(testbed, name, event))
        return result

    # -- fuzzing ----------------------------------------------------------------

    def fuzz_calibration_space(self) -> Dict[str, Tuple[Any, ...]]:
        """Candidate calibration overrides the campaign fuzzer may draw.

        Keyed by calibration field name; the fuzz generator prefixes
        ``"<backend name>."`` to form spec override keys.  Every listed
        value must keep :meth:`default_calibration`'s ``validate()``
        passing on its own *and* in any combination with the other
        listed values (the generator draws independently per field), and
        must never disable telemetry spans — audited specs reject that.
        Backends with no safe knobs return an empty mapping (the
        default), which simply keeps them out of the override draw.
        """
        return {}

    # -- chaos ------------------------------------------------------------------

    def crash_host(self, testbed: Any) -> Optional[Generator]:
        """Kill this platform's warm infrastructure at the current time.

        Synchronous crashes happen inside the call; platforms that also
        *recover* on the simulated clock return a generator the testbed
        drives to completion.
        """
        return None


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Mark loaded first: the builtin modules call register_backend at
    # import, and a second ensure during that import must not recurse.
    _BUILTINS_LOADED = True
    import importlib
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def register_backend(backend: PlatformBackend) -> PlatformBackend:
    """Add ``backend`` to the registry; its name becomes addressable
    everywhere (``Testbed``, ``CampaignSpec`` overrides, the CLI's
    ``--platforms``, the contract test suite)."""
    if not backend.name:
        raise ValueError("backend needs a non-empty name")
    if backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (tests registering throwaway backends only)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> PlatformBackend:
    """Look up a backend by name; raises with the known names."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; registered backends: "
            f"{backend_names()}") from None


def registered_backends() -> Tuple[PlatformBackend, ...]:
    """Every registered backend, in registration order."""
    _load_builtins()
    return tuple(_REGISTRY.values())


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    _load_builtins()
    return tuple(_REGISTRY)
