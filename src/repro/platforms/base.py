"""The function/handler contract shared by both platform simulations.

A serverless function is a :class:`FunctionSpec`: a name, a handler and
resource limits.  Handlers are generator functions::

    def handler(ctx, event):
        data = yield from ctx.blob.get(event['input_key'])
        result = transform(data)                 # real Python compute
        yield from ctx.busy(ctx.work('transform', units=len(data)))
        return result

``ctx`` is a :class:`FunctionContext` giving access to simulated time
(:meth:`~FunctionContext.busy`), storage services, per-function random
streams and calibrated work models.  Handlers run *real* computation (the
trained model really predicts); simulated service time is charged
separately through ``busy``/``work`` so campaigns are fast and
reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

import numpy as np

from repro.sim.distributions import Constant, Distribution
from repro.storage.payload import MB, estimate_size


class PayloadLimitExceeded(ValueError):
    """A value crossing a function boundary exceeds the platform limit."""

    def __init__(self, size: int, limit: int, where: str):
        super().__init__(
            f"payload of {size} bytes exceeds the {limit}-byte limit ({where})")
        self.size = size
        self.limit = limit
        self.where = where

    def __reduce__(self):
        # args hold the formatted message, not the init signature, so
        # the default reduce cannot reconstruct this across a process
        # boundary — rebuild from the typed fields instead.
        return (type(self), (self.size, self.limit, self.where))


class FunctionTimeout(RuntimeError):
    """A function exceeded its configured execution time limit."""


class ThrottlingError(RuntimeError):
    """The platform rejected a request with an HTTP-429-style answer.

    Raised by admission control on both platforms: Lambda's token-bucket/
    concurrency limits and the Azure dispatch-queue depth bound.  Subclasses
    :class:`RuntimeError` so callers that predate typed throttling (and
    only catch the base class) keep working.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        #: hint for the caller's backoff — when capacity should reappear
        self.retry_after_s = retry_after_s


class LoadShedError(RuntimeError):
    """Accepted work was dropped because its queue wait exceeded a budget.

    Deadline-based load shedding: the platform took the request but never
    got to run it within the configured wait budget.  Shed work is
    accounted separately from failures — nothing went *wrong*, the
    platform chose to drop load it could not serve in time.
    """

    def __init__(self, message: str, waited_s: float = 0.0,
                 deadline_s: float = 0.0):
        super().__init__(message)
        self.waited_s = waited_s
        self.deadline_s = deadline_s


@dataclass
class WorkModel:
    """Service-time model for one logical unit of handler work.

    ``duration(units)`` = base + per_unit × units, where ``base`` is drawn
    from a distribution to provide run-to-run jitter.
    """

    base: Distribution = field(default_factory=lambda: Constant(0.0))
    per_unit: float = 0.0

    def duration(self, rng: np.random.Generator, units: float = 1.0) -> float:
        """Sampled service time for ``units`` of work."""
        return max(0.0, self.base.sample(rng) + self.per_unit * units)


@dataclass
class FunctionSpec:
    """Definition of a deployable serverless function."""

    name: str
    handler: Callable[["FunctionContext", Any], Generator]
    memory_mb: int = 1536
    timeout_s: float = 900.0
    #: measured (not configured) memory, for Azure-style billing; defaults
    #: to the configured size when the platform bills on configuration.
    measured_memory_mb: Optional[int] = None
    #: named work models the handler can reference via ``ctx.work(name)``
    work_models: Dict[str, WorkModel] = field(default_factory=dict)

    def __post_init__(self):
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    @property
    def memory_gb(self) -> float:
        return self.memory_mb / 1024.0

    @property
    def billing_memory_mb(self) -> int:
        """Memory the platform bills on (measured if provided)."""
        return self.measured_memory_mb or self.memory_mb


@dataclass
class InvocationResult:
    """Outcome of one function invocation."""

    value: Any
    started_at: float
    finished_at: float
    cold_start: bool
    cold_start_duration: float = 0.0
    queue_wait: float = 0.0
    billed_gb_s: float = 0.0
    function_name: str = ""

    @property
    def duration(self) -> float:
        """Handler execution time (excludes queueing and cold start)."""
        return self.finished_at - self.started_at


class FunctionContext:
    """Everything a handler can touch while it runs."""

    def __init__(self, env, spec: FunctionSpec, rng: np.random.Generator,
                 services: Optional[Dict[str, Any]] = None,
                 telemetry=None, span=None,
                 jitter: Optional[Distribution] = None,
                 cpu_factor: float = 1.0):
        self.env = env
        self.spec = spec
        self.rng = rng
        self.services = dict(services or {})
        self.telemetry = telemetry
        self.span = span
        self.jitter = jitter
        if cpu_factor <= 0:
            raise ValueError(f"cpu_factor must be positive: {cpu_factor}")
        #: relative slowness of this execution environment — >1 means the
        #: same work takes longer (e.g. a small-memory Lambda's CPU share)
        self.cpu_factor = cpu_factor
        self._busy_time = 0.0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.env.now

    @property
    def blob(self):
        """The deployment's blob store (remote object storage)."""
        return self.services["blob"]

    @property
    def busy_time(self) -> float:
        """Total simulated compute time this invocation has consumed."""
        return self._busy_time

    def busy(self, seconds: float) -> Generator:
        """Consume ``seconds`` of simulated compute time.

        If the platform configured an execution-jitter distribution, the
        requested time is scaled by one multiplicative draw.
        """
        if seconds < 0:
            raise ValueError(f"negative busy time: {seconds}")
        seconds *= self.cpu_factor
        if self.jitter is not None:
            seconds *= max(0.0, self.jitter.sample(self.rng))
        self._busy_time += seconds
        yield self.env.timeout(seconds)
        return None

    def work(self, name: str, units: float = 1.0) -> Generator:
        """Consume time from the spec's named :class:`WorkModel`."""
        try:
            model = self.spec.work_models[name]
        except KeyError:
            raise KeyError(
                f"function {self.spec.name!r} has no work model {name!r}; "
                f"available: {sorted(self.spec.work_models)}") from None
        duration = model.duration(self.rng, units)
        yield from self.busy(duration)
        return duration

    def service(self, name: str) -> Any:
        """Look up an injected platform service by name."""
        return self.services[name]


def enforce_payload_limit(value: Any, limit: int, where: str) -> int:
    """Check ``value`` against a byte limit; returns the estimated size."""
    size = estimate_size(value)
    if size > limit:
        raise PayloadLimitExceeded(size, limit, where)
    return size


def round_up(value: float, granularity: float) -> float:
    """Round ``value`` up to a billing granularity (e.g. 0.1 s)."""
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    ticks = math.ceil(round(value / granularity, 9))
    return ticks * granularity
