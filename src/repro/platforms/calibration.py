"""Calibration constants for both platform simulations.

Mechanisms (replay, polling, scale control, per-transition pricing) are
*implemented*; the constants below only set their magnitudes.  Each value
is annotated with the paper measurement or public price sheet it comes
from.  Absolute numbers are approximate by design — the reproduction
targets the paper's *shapes* (orderings, ratios, crossovers).

All times are seconds, all prices USD, all memory MB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.distributions import (
    Constant,
    Distribution,
    LogNormal,
    Mixture,
    Normal,
    Uniform,
)
from repro.storage.payload import KB, MB


@dataclass
class AWSCalibration:
    """AWS Lambda + Step Functions constants (paper Table I, §V)."""

    # -- execution environment (Table I) --------------------------------------
    region: str = "West US 2"
    runtime: str = "Python 3.7"
    default_memory_mb: int = 1536
    time_limit_s: float = 900.0            # 15 min
    payload_limit_bytes: int = 256 * KB    # Step Functions payload cap [18]

    # -- Lambda runtime behaviour ---------------------------------------------
    #: Cold-start provisioning per new container.  Paper §V-B: "AWS cold
    #: start delay remains in the range of 1-2 seconds".
    cold_start: Distribution = field(default_factory=lambda: Uniform(1.0, 2.0))
    #: Warm invocation dispatch overhead.
    warm_start: Distribution = field(
        default_factory=lambda: Uniform(0.005, 0.020))
    #: Idle container keep-alive before reclamation.
    keep_alive_s: float = 600.0
    #: Account-level concurrent execution limit (default AWS quota).
    concurrency_limit: int = 1000
    #: Token-bucket admission: burst capacity (requests admitted at once
    #: from a full bucket — AWS's initial burst concurrency quota).
    burst_concurrency: int = 1000
    #: Token-bucket admission: tokens restored per second of simulated
    #: time, up to ``burst_concurrency``.
    refill_per_s: float = 500.0
    #: Execution-time jitter applied multiplicatively to handler busy time.
    execution_jitter: Distribution = field(
        default_factory=lambda: Normal(mu=1.0, sigma=0.03))

    # -- Step Functions behaviour ----------------------------------------------
    #: Client-scheduler latency per state transition (sharp, small: the
    #: paper's Fig 7 shows a near-vertical CDF for AWS-Step).
    transition_latency: Distribution = field(
        default_factory=lambda: Uniform(0.015, 0.040))
    #: Extra dispatch overhead for the first state after an idle period —
    #: Fig 10 reports 3-5 s AWS-Step cold start (Start state to first
    #: function), i.e. Lambda cold start plus this machinery.
    step_cold_overhead: Distribution = field(
        default_factory=lambda: Uniform(1.5, 3.0))
    #: How many times Step Functions attempts a Task-state Lambda
    #: invocation that keeps coming back 429 before surfacing
    #: ``Lambda.TooManyRequestsException`` to Retry/Catch.
    throttle_retry_max_attempts: int = 6
    #: Base delay of the throttle-retry exponential backoff.
    throttle_retry_interval_s: float = 0.5
    #: Ceiling of the throttle-retry backoff (capped exponential).
    throttle_retry_cap_s: float = 8.0

    # -- billing (2021 public price sheet, us-west-2) ---------------------------
    gb_s_price: float = 1.66667e-5         # Lambda compute, $/GB-s
    request_price: float = 2.0e-7          # $0.20 per 1M requests
    transition_price: float = 2.5e-5       # Step Functions, $25 per 1M
    #: Express workflows: per-request plus duration-based pricing.
    express_request_price: float = 1.0e-6  # $1.00 per 1M requests
    express_gb_s_price: float = 1.667e-5   # $0.06 per GB-hour
    billing_granularity_s: float = 0.100   # paper §IV-A: rounded to 100 ms

    #: Hourly price of one provisioned-concurrency GB (2021 price sheet:
    #: $0.0000041667 per GB-s of provisioned capacity ≈ $0.015/GB-hour).
    provisioned_gb_hour_price: float = 0.015

    #: Memory at which a Lambda gets one full vCPU (CPU share scales
    #: linearly with configured memory — why the paper's video deployment
    #: needed 2 GB "to deliver the same latency", §V-B).
    full_cpu_memory_mb: float = 1769.0

    #: Collect telemetry spans.  Disabling drops span retention (a perf
    #: knob for huge sweeps) but starves the invariant auditor —
    #: ``CampaignSpec`` refuses ``audit=True`` with this off.
    telemetry_spans: bool = True

    def cpu_factor(self, memory_mb: int) -> float:
        """Execution-time multiplier for a given memory configuration."""
        factor = self.full_cpu_memory_mb / float(memory_mb)
        return min(3.0, max(0.5, factor))

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        """Reject nonsensical admission-control settings.

        Called from ``__post_init__`` and again after
        :meth:`~repro.core.parallel.CampaignSpec.calibrations` applies
        overrides (which bypass dataclass construction).
        """
        if self.concurrency_limit <= 0:
            raise ValueError("concurrency_limit must be positive")
        if self.burst_concurrency <= 0:
            raise ValueError("burst_concurrency must be positive")
        if self.refill_per_s <= 0:
            raise ValueError("refill_per_s must be positive")
        if self.throttle_retry_max_attempts < 1:
            raise ValueError("throttle_retry_max_attempts must be >= 1")
        if self.throttle_retry_interval_s <= 0:
            raise ValueError("throttle_retry_interval_s must be positive")
        if self.throttle_retry_cap_s < self.throttle_retry_interval_s:
            raise ValueError(
                "throttle_retry_cap_s must be >= throttle_retry_interval_s")


@dataclass
class AzureCalibration:
    """Azure Functions (Consumption) + Durable extension constants."""

    # -- execution environment (Table I) ----------------------------------------
    region: str = "US East"
    runtime: str = "Python 3.7"
    max_memory_mb: int = 1536              # consumption plan cap, not tunable
    time_limit_s: float = 1800.0           # 30 min
    durable_payload_limit_bytes: int = 64 * KB    # cross-function limit [19]
    queue_payload_limit_bytes: int = 256 * KB     # Azure Storage Queue cap

    # -- scale controller ---------------------------------------------------------
    #: How often the scale controller re-evaluates queue pressure.
    scale_interval_s: float = 10.0
    #: New instances added per decision when pressure is detected.
    instances_per_decision: int = 2
    #: Consumption-plan instance cap.
    max_instances: int = 200
    #: Concurrent executions one instance can host (Python worker).
    instance_concurrency: int = 2
    #: Idle instance lifetime before the controller reclaims it.
    instance_idle_timeout_s: float = 300.0
    #: Provisioning time for one new instance — wide and heavy-tailed:
    #: the paper's Fig 13 reports ~10 s average orchestrator starts with a
    #: wide range.  The slow mode models stuck/contended container starts.
    instance_provision: Distribution = field(
        default_factory=lambda: Mixture([
            (0.85, LogNormal(median=8.0, sigma=0.5)),
            (0.15, LogNormal(median=70.0, sigma=0.8)),
        ]))
    #: Scale-out stalls: occasionally the controller cannot allocate new
    #: instances for a while (capacity/allocation throttling).  Workers
    #: queued behind a stall wait minutes — the mechanism behind Fig 14's
    #: 5 %-at-270 s scheduling-delay tail and Table III's long finish
    #: times, and one of the paper's two observed slow-down modes ("in
    #: some other cases, this is due to the queue waiting time").
    scale_stall_probability: float = 0.08
    scale_stall_duration: Distribution = field(
        default_factory=lambda: LogNormal(median=350.0, sigma=0.5))

    # -- overload protection ----------------------------------------------------
    #: Bound on queued work before the trigger answers HTTP 429: caps the
    #: app's dispatch queue and the task hub's work-item queue (durable
    #: producers block instead — storage backpressure).  ``None`` leaves
    #: the queues unbounded, the platform default.
    queue_depth_limit: Optional[int] = None
    #: Deadline-based load shedding: accepted HTTP/queue-trigger work
    #: still waiting for an instance slot after this budget is dropped
    #: and accounted as *shed* (not failed).  ``None`` disables shedding.
    shed_deadline_s: Optional[float] = None

    # -- trigger dispatch ------------------------------------------------------------
    #: Warm dispatch of a durable work item (control/work-item queue hop).
    durable_dispatch: Distribution = field(
        default_factory=lambda: Uniform(0.030, 0.120))
    #: Orchestrator cold start after idle hours — Fig 10: "often less than
    #: 2 seconds" for durable orchestrators and entities.
    durable_cold_start: Distribution = field(
        default_factory=lambda: Uniform(0.5, 2.0))
    #: Queue-trigger chain cold start after idle hours — Fig 10: 10-20 s
    #: ("queuing of requests on a static pool of containers", citing [11]).
    queue_trigger_cold_start: Distribution = field(
        default_factory=lambda: Uniform(10.0, 20.0))
    #: HTTP-trigger cold start for plain functions.
    http_cold_start: Distribution = field(
        default_factory=lambda: Uniform(1.0, 4.0))
    #: Queue-trigger polling delay per hop in an Az-Queue function chain —
    #: Fig 8 shows ~30 s of 99ile queue time across the 4-function chain.
    queue_trigger_poll: Distribution = field(
        default_factory=lambda: LogNormal(median=2.2, sigma=0.85))
    #: Execution-time jitter (Azure shows more variance than AWS: Fig 7).
    execution_jitter: Distribution = field(
        default_factory=lambda: Normal(mu=1.0, sigma=0.08))
    #: Relative CPU slowness of consumption-plan Python workers versus a
    #: full Lambda vCPU (measurement studies consistently find Azure
    #: consumption instances slower for CPU-bound Python).
    cpu_slowdown: float = 1.25

    # -- durable task framework ---------------------------------------------------
    #: CPU time to start an orchestrator episode (load + dispatch).
    episode_base_cpu_s: float = 0.200
    #: CPU time to replay one completed history event during an episode.
    #: Drives the paper's Fig 11a GB-s inflation (Az-Dorch +44 %, Az-Dent
    #: +88 % over stateless) mechanistically.
    replay_event_cpu_s: float = 0.020
    #: Dispatch + serialization overhead per entity operation, on top of
    #: the state read/write table transactions.  Makes entity ops slower
    #: than the same logic in a stateless activity (§V-A key takeaway).
    entity_op_overhead: Distribution = field(
        default_factory=lambda: Uniform(0.150, 0.450))
    #: Execution-time multiplier for user logic running inside an entity
    #: versus the same logic in a stateless activity (paper Fig 8: Az-Dent
    #: executes ~8 % longer than Az-Dorch; §V-A key takeaway).
    entity_execution_slowdown: float = 1.15
    #: Control/work-item queue polling backoff bounds while idle.
    min_poll_interval_s: float = 0.10
    max_poll_interval_s: float = 30.0
    #: Skip simulating individual empty polls when a queue is provably
    #: idle: consumers block on the enqueue wakeup and the elided polls
    #: are metered in batches (identical bill, far fewer kernel events).
    #: Queues under fault plans or depth bounds always fall back to
    #: sampled polling regardless of this flag.
    idle_poll_elision: bool = True
    #: Task hub control-queue partitions (Durable default).
    partition_count: int = 4
    #: Partition lease (blob) heartbeat interval — billed while idle.
    lease_renewal_interval_s: float = 10.0
    #: The Azure scale controller polls every task-hub queue on the
    #: *tenant's* storage account around the clock to decide scaling —
    #: the notorious source of idle-durable-app storage bills, and the
    #: paper's "constant queue and event polling adds 70 % transition
    #: cost" (Fig 15).
    controller_poll_interval_s: float = 0.7

    # -- Netherite mode (related work, §VI) --------------------------------------------
    #: Netherite [Burckhardt et al. 2021] replaces the storage-queue/table
    #: backend with partitioned, batched commit logs and keeps instances
    #: cached in memory, eliminating per-event history writes, full-history
    #: reads, and replay re-execution.  Toggling this on shows what the
    #: paper's observed durable overheads would become under that design.
    netherite_mode: bool = False

    # -- premium (elastic) plan ------------------------------------------------------
    #: Pre-warmed instances the premium plan keeps alive around the clock.
    premium_min_instances: int = 2
    #: Hourly price of one premium EP1 instance (2021 price sheet).
    premium_instance_hourly_price: float = 0.173

    # -- billing (2021 public price sheet) -------------------------------------------
    gb_s_price: float = 1.6e-5             # Functions compute, $/GB-s
    execution_price: float = 2.0e-7        # $0.20 per 1M executions
    storage_transaction_price: float = 4.0e-8   # $0.0004 per 10K transactions
    billing_granularity_s: float = 0.001   # ms-granularity GB-s metering
    min_billed_execution_s: float = 0.100  # 100 ms minimum per execution

    #: Collect telemetry spans (see :attr:`AWSCalibration.telemetry_spans`).
    telemetry_spans: bool = True

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        """Reject nonsensical overload-protection settings.

        Mirrors :meth:`AWSCalibration.validate`; the optional bounds are
        checked only when set (``None`` means disabled, the platform
        default).
        """
        if self.max_instances <= 0:
            raise ValueError("max_instances must be positive")
        if self.queue_depth_limit is not None and self.queue_depth_limit <= 0:
            raise ValueError(
                "queue_depth_limit must be positive when set "
                "(use None to leave the queues unbounded)")
        if self.shed_deadline_s is not None and self.shed_deadline_s <= 0:
            raise ValueError(
                "shed_deadline_s must be positive when set "
                "(use None to disable load shedding)")


def default_aws_calibration() -> AWSCalibration:
    """A fresh AWS calibration with the documented defaults."""
    return AWSCalibration()


def default_azure_calibration() -> AzureCalibration:
    """A fresh Azure calibration with the documented defaults."""
    return AzureCalibration()
