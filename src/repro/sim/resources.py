"""Shared-resource primitives built on the DES kernel.

These follow SimPy semantics closely enough that anyone who has used SimPy
will feel at home:

* :class:`Resource` — a semaphore with ``capacity`` slots; requests are
  events that trigger when a slot is granted.
* :class:`PriorityResource` — like :class:`Resource` but requests carry a
  priority (lower value is served first).
* :class:`Container` — a continuous level with ``put``/``get`` amounts.
* :class:`Store` — a FIFO object store with blocking ``put``/``get``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.kernel import Environment, Event, SimulationError


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...  # holding the resource
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        self.resource._cancel(self)


class PriorityRequest(Request):
    """A :class:`Request` with an explicit priority (lower = first)."""

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self.time = resource.env.now
        super().__init__(resource)


class Resource:
    """A semaphore-style resource with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        request = Request(self)
        self.queue.append(request)
        self._grant()
        return request

    def release(self, request: Request) -> None:
        """Return a held slot (no-op if the request was never granted)."""
        if request in self.users:
            self.users.remove(request)
        else:
            self._cancel(request)
        self._grant()

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.pop(0)
            self.users.append(request)
            request.succeed()


class PriorityResource(Resource):
    """Resource whose waiters are served in priority order."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: list = []
        self._sequence = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        request = PriorityRequest(self, priority)
        heapq.heappush(self._heap, (priority, self._sequence, request))
        self._sequence += 1
        self._grant()
        return request

    def _cancel(self, request: Request) -> None:
        self._heap = [entry for entry in self._heap if entry[2] is not request]
        heapq.heapify(self._heap)

    def _grant(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            _, _, request = heapq.heappop(self._heap)
            self.users.append(request)
            request.succeed()


class Container:
    """A continuous quantity with bounded level (e.g. tokens, bytes)."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._putters: List[tuple] = []
        self._getters: List[tuple] = []

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks (pending event) while it would overflow."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    event.succeed()
                    progress = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    event.succeed(amount)
                    progress = True


class Store:
    """FIFO store of arbitrary items with blocking put/get.

    ``get`` accepts an optional filter; the first matching item (in FIFO
    order) is returned.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._putters: List[tuple] = []
        self._getters: List[tuple] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; blocks while the store is full."""
        event = Event(self.env)
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return the first (matching) item; blocks if none."""
        event = Event(self.env)
        self._getters.append((predicate, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit pending putters while there is room.
            while self._putters and len(self.items) < self.capacity:
                item, event = self._putters.pop(0)
                self.items.append(item)
                event.succeed()
                progress = True
            # Serve getters whose predicate matches something.
            served: List[int] = []
            for index, (predicate, event) in enumerate(self._getters):
                match_index = None
                for item_index, item in enumerate(self.items):
                    if predicate is None or predicate(item):
                        match_index = item_index
                        break
                if match_index is not None:
                    item = self.items.pop(match_index)
                    event.succeed(item)
                    served.append(index)
                    progress = True
            for index in reversed(served):
                self._getters.pop(index)
