"""Discrete-event simulation kernel.

A small, dependency-free, coroutine-based DES in the style of SimPy.
Processes are Python generators that ``yield`` events; the
:class:`~repro.sim.kernel.Environment` advances a virtual clock and resumes
processes when the events they wait on are triggered.

The kernel is the substrate on which both cloud platform simulations
(:mod:`repro.aws`, :mod:`repro.azure`) are built.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, tick):
...     while env.now < 2:
...         log.append((name, env.now))
...         yield env.timeout(tick)
>>> _ = env.process(clock(env, 'fast', 0.5))
>>> _ = env.process(clock(env, 'slow', 1.0))
>>> env.run(until=2)
>>> log[0]
('fast', 0.0)
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    join_all,
)
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.distributions import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    Normal,
    Pareto,
    Shifted,
    Uniform,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Constant",
    "Container",
    "Distribution",
    "Empirical",
    "Environment",
    "Event",
    "Exponential",
    "Interrupt",
    "LogNormal",
    "Mixture",
    "Normal",
    "Pareto",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "Shifted",
    "SimulationError",
    "Store",
    "Timeout",
    "join_all",
    "Uniform",
]
