"""Core event loop for the discrete-event simulation kernel.

The design follows the classic process-interaction style: simulation
processes are generator functions that yield :class:`Event` objects.  The
:class:`Environment` keeps a priority queue of scheduled events ordered by
``(time, priority, sequence)`` and resumes each waiting process when the
event it yielded is triggered.

Only virtual time exists here; nothing sleeps on the wall clock.  A four-day
cold-start campaign therefore costs only as many event dispatches as it
schedules.

This module is the hot path of every campaign, so it trades a little
repetition for dispatch rate: all classes carry ``__slots__``, the
frequent constructors (:class:`Timeout`, :class:`Initialize`) and
triggers push onto the queue directly instead of going through
:meth:`Environment.schedule`, and queue entries are ``(time, order,
event)`` 3-tuples where ``order`` packs ``(priority, sequence)`` into one
integer.  ``benchmarks/test_kernel_throughput.py`` tracks the events/sec
budget against the frozen seed kernel.

Second-round optimizations (still bit-identical to the original
dispatch order — the total order over ``(time, priority, sequence)``
keys is unchanged):

* **Immediate-event batching.**  Events scheduled at the current clock
  time (``succeed``/``fail``/``trigger``, :class:`Initialize`,
  zero-delay timeouts) skip the heap entirely and land on two FIFO
  deques (urgent / normal).  Appending is O(1) instead of O(log n), and
  the dispatch loop drains a whole same-timestamp batch with O(1) pops,
  comparing against the heap head only to preserve the exact global
  ``(time, order)`` sequence.
* **Timeout pooling.**  A dispatched :class:`Timeout` that nothing else
  references (checked via ``sys.getrefcount``) is recycled onto a
  per-environment free list together with its (cleared) callbacks list,
  so the hottest allocation in storage-latency-bound campaigns reuses
  warm objects instead of hitting the allocator.
* **Inlined process stepping.**  The run loops recognize the dominant
  dispatch shape — exactly one callback, and it is a
  :meth:`Process._resume` bound method — and step the generator inline,
  eliding one Python frame per dispatch.  :meth:`Environment.step` keeps
  the readable, un-inlined reference implementation of the same
  semantics.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from sys import getrefcount
from types import MethodType
from typing import Any, Callable, Generator, Iterable, Optional, Sequence

#: Event scheduling priorities.  Lower sorts earlier at equal times.
URGENT = 0
NORMAL = 1

#: Queue entries order by ``priority * _PRIORITY_STRIDE + sequence`` so a
#: single integer comparison replaces the old (priority, sequence) pair.
#: 2**53 keeps every sequence number exactly representable and leaves
#: priorities dominant.
_PRIORITY_STRIDE = 2 ** 53

#: Upper bound on the per-environment :class:`Timeout` free list.  The
#: pool only grows while dispatching, so this is a safety valve against
#: pathological churn, not a tuning knob.
_TIMEOUT_POOL_LIMIT = 4096


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. running a finished environment)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An event that may be waited on by processes.

    Events have three observable states: *pending* (created, not yet
    triggered), *triggered* (scheduled on the event queue with a value),
    and *processed* (callbacks have run).  A process that yields a
    triggered-or-processed event resumes immediately on the next dispatch.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: set when a failure value has been retrieved or defused
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception for failed events)."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        env = self.env
        sequence = env._sequence
        env._ready.append((_PRIORITY_STRIDE + sequence, self))
        env._sequence = sequence + 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        sequence = env._sequence
        if delay:
            heappush(env._queue,
                     (env._now + delay, _PRIORITY_STRIDE + sequence, self))
        else:
            env._ready.append((_PRIORITY_STRIDE + sequence, self))
        env._sequence = sequence + 1


class Initialize(Event):
    """Internal event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        sequence = env._sequence
        env._urgent.append((sequence, self))   # URGENT
        env._sequence = sequence + 1


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event that triggers when the generator returns
    (successfully, with the ``StopIteration`` value) or raises.
    """

    __slots__ = ("_generator", "_send", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        # The bound ``send`` is cached because resuming is the single
        # hottest call in the dispatch loop.
        self._send = generator.send
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def name(self) -> str:
        """The wrapped generator function's name (for diagnostics)."""
        return getattr(self._generator, "__name__", repr(self._generator))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=URGENT)
        # Detach from the event the process was waiting on, if any.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of the triggered event."""
        env = self.env
        env._active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as error:
                self._ok = False
                self._value = error
                env.schedule(self)
                break

            try:
                callbacks = next_event.callbacks
            except AttributeError:
                error = SimulationError(
                    f"process {self.name} yielded a non-event: {next_event!r}")
                self._ok = False
                self._value = error
                env.schedule(self)
                break

            if callbacks is not None:
                # Event is pending or triggered-but-unprocessed: wait for it.
                callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: resume immediately with its value.
            event = next_event

        env._active_process = None


class ConditionValue:
    """Mapping from events to values for :class:`AllOf`/:class:`AnyOf`."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> list:
        return [event._value for event in self.events]

    def __repr__(self) -> str:
        return f"<ConditionValue {len(self.events)} events>"


class Condition(Event):
    """Composite event over a set of sub-events.

    Triggers when ``evaluate(events, done_count)`` returns True.  Failed
    sub-events propagate their exception to the condition.
    """

    __slots__ = ("_events", "_evaluate", "_done")

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list, int], bool],
                 events: Iterable[Event]):
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = None
        self._defused = False
        self._events = events = list(events)
        self._evaluate = evaluate
        self._done = 0
        if not events:
            self.succeed(ConditionValue([]))
            return

        # One pass: validate and subscribe together, with one bound
        # method shared by every subscription instead of one per event.
        check = self._check
        for event in events:
            if event.env is not env:
                raise SimulationError("events from different environments")
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _succeed_with_done(self) -> None:
        done = [e for e in self._events if e._ok is not None and e._ok]
        self.succeed(ConditionValue(done))

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        self._done += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._done):
            self._succeed_with_done()


def _all_done(events: list, done: int) -> bool:
    return done == len(events)


def _any_done(events: list, done: int) -> bool:
    return done >= 1


class AllOf(Condition):
    """Condition that triggers once *all* sub-events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, _all_done, events)

    def _check(self, event: Event) -> None:
        # Specialized: count-complete test without the evaluate() call.
        if self._ok is not None:
            return
        done = self._done = self._done + 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif done == len(self._events):
            # Every sub-event checked in without failing, so all are ok:
            # skip _succeed_with_done()'s per-event filtering.
            self.succeed(ConditionValue(self._events))


class AnyOf(Condition):
    """Condition that triggers once *any* sub-event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, _any_done, events)

    def _check(self, event: Event) -> None:
        # Specialized: the first sub-event settles the condition.
        if self._ok is not None:
            return
        self._done += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self._succeed_with_done()


def join_all(env: "Environment", processes: Sequence["Process"]) -> Generator:
    """Structured fan-out join: wait for every process, returning their
    values in order; on the first failure, cancel the surviving siblings
    and re-raise it.

    A bare ``yield env.all_of(processes)`` propagates the first failure
    but leaves the other branches running: a *second* branch failing
    later has no waiter (the condition already triggered, so it no
    longer defuses members), and the stray failure crashes the whole
    run.  Cancelling the siblings mirrors cloud fan-out semantics — a
    failed branch fails the parallel state and the rest are aborted —
    and every process is pre-defused so a same-instant double failure
    (or the cancellation itself) cannot escape either.
    """
    processes = list(processes)
    for process in processes:
        process.defuse()
    condition = env.all_of(processes)
    try:
        yield condition
    except BaseException:
        condition.defuse()
        for process in processes:
            if process.is_alive:
                process.interrupt(cause="sibling failure")
        raise
    return [process.value for process in processes]


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    __slots__ = ("_now", "_queue", "_urgent", "_ready", "_sequence",
                 "_active_process", "_monitor", "_timeout_pool")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        #: immediate (zero-delay) events, drained before the clock moves:
        #: URGENT-priority entries and NORMAL-priority entries, each FIFO
        #: in sequence order as ``(order, event)`` pairs.
        self._urgent: deque = deque()
        self._ready: deque = deque()
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._monitor: Optional[Callable[[float], None]] = None
        #: free list of recycled Timeout instances (see run()).
        self._timeout_pool: list = []

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def monitor(self) -> Optional[Callable[[float], None]]:
        """Dispatch observer: called with the clock after every pop."""
        return self._monitor

    @monitor.setter
    def monitor(self, observer: Optional[Callable[[float], None]]) -> None:
        self._monitor = observer

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Place ``event`` on the queue ``delay`` time units from now."""
        sequence = self._sequence
        if delay:
            heappush(self._queue,
                     (self._now + delay,
                      priority * _PRIORITY_STRIDE + sequence, event))
        elif priority == NORMAL:
            self._ready.append((_PRIORITY_STRIDE + sequence, event))
        elif priority == URGENT:
            self._urgent.append((sequence, event))
        else:
            # Exotic priorities take the generic heap path; the dispatch
            # loops order heap entries against the deques numerically.
            heappush(self._queue,
                     (self._now, priority * _PRIORITY_STRIDE + sequence,
                      event))
        self._sequence = sequence + 1

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that triggers ``delay`` time units from now."""
        # Inlined Timeout.__init__ (keep in sync): this is the single
        # hottest constructor, and skipping the __init__ frame is worth
        # the duplication.
        pool = self._timeout_pool
        if pool:
            # Recycled instance: env/_ok/_defused are already correct and
            # the callbacks list was cleared when it entered the pool.
            event = pool.pop()
            event._value = value
            event.delay = delay
        else:
            event = Timeout.__new__(Timeout)
            event.env = self
            event.callbacks = []
            event._value = value
            event._ok = True
            event._defused = False
            event.delay = delay
        sequence = self._sequence
        if delay > 0:
            heappush(self._queue,
                     (self._now + delay, _PRIORITY_STRIDE + sequence, event))
        elif delay == 0:
            self._ready.append((_PRIORITY_STRIDE + sequence, event))
        else:
            # The ordering compare (not ``delay < 0``) also rejects NaN,
            # which would poison the heap invariant.
            raise ValueError(f"negative timeout delay: {delay}")
        self._sequence = sequence + 1
        return event

    def event(self) -> Event:
        """Return a fresh, untriggered event."""
        # Inlined Event.__init__ (keep in sync), as with timeout().
        event = Event.__new__(Event)
        event.env = self
        event.callbacks = []
        event._value = None
        event._ok = None
        event._defused = False
        return event

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Return an event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Return an event that triggers when any of ``events`` has."""
        return AnyOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._urgent or self._ready:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def _pop_next(self) -> Optional[Event]:
        """Remove and return the next event in global ``(time, order)``
        sequence, advancing the clock; ``None`` when nothing is left.

        Immediate events (the deques) always carry the current clock
        time, so the heap head competes with them only at equal times,
        by packed order.  This is the readable reference for the
        selection logic inlined into :meth:`run`.
        """
        queue = self._queue
        urgent = self._urgent
        if urgent:
            if queue and queue[0][0] == self._now \
                    and queue[0][1] < urgent[0][0]:
                self._now, _, event = heappop(queue)
                return event
            return urgent.popleft()[1]
        ready = self._ready
        if ready:
            if queue and queue[0][0] == self._now \
                    and queue[0][1] < ready[0][0]:
                self._now, _, event = heappop(queue)
                return event
            return ready.popleft()[1]
        if queue:
            self._now, _, event = heappop(queue)
            return event
        return None

    def step(self) -> None:
        """Process the next scheduled event.

        This is the un-inlined reference implementation of one dispatch;
        :meth:`run` repeats the same semantics with the hot paths
        (single-process resume, timeout recycling) specialized inline.
        """
        event = self._pop_next()
        if event is None:
            raise SimulationError("no scheduled events")
        monitor = self._monitor
        if monitor is not None:
            monitor(self._now)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # An unhandled failure crashes the simulation, loudly.
            raise event._value

    def run(self, until: Any = None, _pop=heappop) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a number (run
        until that simulated time), or an :class:`Event` (run until the
        event triggers, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until ({stop_time}) lies in the past (now={self._now})")

        # Both loops below inline one dispatch — event selection, clock
        # advance, monitor hook, callback fan-out (with the dominant
        # single-process resume stepped inline), failure check and
        # timeout recycling — so the hot path touches only locals.  Keep
        # them in sync with step()/_pop_next() when editing any of them.
        queue = self._queue
        urgent = self._urgent
        ready = self._ready
        pool = self._timeout_pool
        monitor = self._monitor
        resume = Process._resume
        # Hot-loop globals hoisted to locals: every name in the dispatch
        # blocks below must resolve via LOAD_FAST.
        grc = getrefcount
        method_type = MethodType
        timeout_cls = Timeout
        stride = _PRIORITY_STRIDE
        pool_limit = _TIMEOUT_POOL_LIMIT
        allof_check = AllOf._check
        anyof_check = AnyOf._check
        cond_value = ConditionValue

        if stop_event is not None:
            # Dispatch until the stop event carries a value; as in
            # step()-driven runs, the stop event's own callbacks fire on
            # a later dispatch, not before returning.
            while stop_event._ok is None:
                # -- selection (batched: immediates drain at O(1) before
                # the heap moves the clock; ties resolve by packed order)
                if urgent:
                    if queue and queue[0][0] == self._now \
                            and queue[0][1] < urgent[0][0]:
                        self._now, _, event = _pop(queue)
                    else:
                        event = urgent.popleft()[1]
                elif ready:
                    if queue and queue[0][0] == self._now \
                            and queue[0][1] < ready[0][0]:
                        self._now, _, event = _pop(queue)
                    else:
                        event = ready.popleft()[1]
                elif queue:
                    self._now, _, event = _pop(queue)
                else:
                    break
                if monitor is not None:
                    monitor(self._now)
                # -- dispatch
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    cb = callbacks[0]
                    func = cb.__func__ if cb.__class__ is method_type else None
                    if func is resume:
                        # Inlined Process._resume (keep in sync): step
                        # the generator without the extra Python frame.
                        # A failed event is defused by the throw branch,
                        # so no unhandled-failure check is needed here.
                        proc = cb.__self__
                        self._active_process = proc
                        send = proc._send
                        step_event = event
                        while True:
                            try:
                                if step_event._ok:
                                    next_event = send(step_event._value)
                                else:
                                    step_event._defused = True
                                    next_event = proc._generator.throw(
                                        step_event._value)
                            except StopIteration as stop:
                                proc._ok = True
                                proc._value = stop.value
                                seq = self._sequence
                                ready.append((stride + seq, proc))
                                self._sequence = seq + 1
                                break
                            except BaseException as error:
                                proc._ok = False
                                proc._value = error
                                seq = self._sequence
                                ready.append((stride + seq, proc))
                                self._sequence = seq + 1
                                break
                            try:
                                next_callbacks = next_event.callbacks
                            except AttributeError:
                                proc._ok = False
                                proc._value = SimulationError(
                                    f"process {proc.name} yielded a "
                                    f"non-event: {next_event!r}")
                                seq = self._sequence
                                ready.append((stride + seq, proc))
                                self._sequence = seq + 1
                                break
                            if next_callbacks is not None:
                                next_callbacks.append(cb)
                                proc._target = next_event
                                break
                            step_event = next_event
                        step_event = None
                        self._active_process = None
                    elif func is allof_check:
                        # Inlined AllOf._check + Event.succeed (keep in sync):
                        # conditions over timeout batches are the fan-out shape.
                        cond = cb.__self__
                        if cond._ok is None:
                            done = cond._done = cond._done + 1
                            if not event._ok:
                                event._defused = True
                                cond.fail(event._value)
                            elif done == len(cond._events):
                                value = cond_value.__new__(cond_value)
                                value.events = cond._events[:]
                                cond._ok = True
                                cond._value = value
                                ready.append(
                                    (stride + self._sequence, cond))
                                self._sequence += 1
                        elif event._ok is False and not event._defused:
                            raise event._value
                    elif func is anyof_check:
                        # Inlined AnyOf._check + _succeed_with_done (keep in
                        # sync): `a | b` waits are the poll-backoff shape.
                        cond = cb.__self__
                        if cond._ok is None:
                            cond._done += 1
                            if not event._ok:
                                event._defused = True
                                cond.fail(event._value)
                            else:
                                value = cond_value.__new__(cond_value)
                                value.events = [e for e in cond._events
                                                if e._ok is not None and e._ok]
                                cond._ok = True
                                cond._value = value
                                ready.append(
                                    (stride + self._sequence, cond))
                                self._sequence += 1
                        elif event._ok is False and not event._defused:
                            raise event._value
                    else:
                        cb(event)
                        if event._ok is False and not event._defused:
                            raise event._value
                else:
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event._defused:
                        # An unhandled failure crashes the run, loudly.
                        raise event._value
                # -- timeout recycling: safe only when nothing else can
                # observe the object (our local + getrefcount's argument).
                if event.__class__ is timeout_cls and grc(event) == 2 \
                        and len(pool) < pool_limit:
                    if grc(callbacks) == 2:
                        callbacks.clear()
                        event.callbacks = callbacks
                    else:
                        event.callbacks = []
                    pool.append(event)
            if stop_event._ok is not None:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                "run(until=event) finished but the event never triggered")

        # Drain to exhaustion or to stop_time; immediates always carry
        # the current clock time, so only heap pops consult stop_time.
        while True:
            if urgent:
                if queue and queue[0][0] == self._now \
                        and queue[0][1] < urgent[0][0]:
                    self._now, _, event = _pop(queue)
                else:
                    event = urgent.popleft()[1]
            elif ready:
                if queue and queue[0][0] == self._now \
                        and queue[0][1] < ready[0][0]:
                    self._now, _, event = _pop(queue)
                else:
                    event = ready.popleft()[1]
            elif queue:
                if queue[0][0] > stop_time:
                    break
                self._now, _, event = _pop(queue)
            else:
                break
            if monitor is not None:
                monitor(self._now)
            # -- dispatch (same block as above; keep in sync)
            callbacks = event.callbacks
            event.callbacks = None
            if len(callbacks) == 1:
                cb = callbacks[0]
                func = cb.__func__ if cb.__class__ is method_type else None
                if func is resume:
                    proc = cb.__self__
                    self._active_process = proc
                    send = proc._send
                    step_event = event
                    while True:
                        try:
                            if step_event._ok:
                                next_event = send(step_event._value)
                            else:
                                step_event._defused = True
                                next_event = proc._generator.throw(
                                    step_event._value)
                        except StopIteration as stop:
                            proc._ok = True
                            proc._value = stop.value
                            seq = self._sequence
                            ready.append((stride + seq, proc))
                            self._sequence = seq + 1
                            break
                        except BaseException as error:
                            proc._ok = False
                            proc._value = error
                            seq = self._sequence
                            ready.append((stride + seq, proc))
                            self._sequence = seq + 1
                            break
                        try:
                            next_callbacks = next_event.callbacks
                        except AttributeError:
                            proc._ok = False
                            proc._value = SimulationError(
                                f"process {proc.name} yielded a "
                                f"non-event: {next_event!r}")
                            seq = self._sequence
                            ready.append((stride + seq, proc))
                            self._sequence = seq + 1
                            break
                        if next_callbacks is not None:
                            next_callbacks.append(cb)
                            proc._target = next_event
                            break
                        step_event = next_event
                    step_event = None
                    self._active_process = None
                elif func is allof_check:
                    # Inlined AllOf._check + Event.succeed (keep in sync):
                    # conditions over timeout batches are the fan-out shape.
                    cond = cb.__self__
                    if cond._ok is None:
                        done = cond._done = cond._done + 1
                        if not event._ok:
                            event._defused = True
                            cond.fail(event._value)
                        elif done == len(cond._events):
                            value = cond_value.__new__(cond_value)
                            value.events = cond._events[:]
                            cond._ok = True
                            cond._value = value
                            ready.append(
                                (stride + self._sequence, cond))
                            self._sequence += 1
                    elif event._ok is False and not event._defused:
                        raise event._value
                elif func is anyof_check:
                    # Inlined AnyOf._check + _succeed_with_done (keep in
                    # sync): `a | b` waits are the poll-backoff shape.
                    cond = cb.__self__
                    if cond._ok is None:
                        cond._done += 1
                        if not event._ok:
                            event._defused = True
                            cond.fail(event._value)
                        else:
                            value = cond_value.__new__(cond_value)
                            value.events = [e for e in cond._events
                                            if e._ok is not None and e._ok]
                            cond._ok = True
                            cond._value = value
                            ready.append(
                                (stride + self._sequence, cond))
                            self._sequence += 1
                    elif event._ok is False and not event._defused:
                        raise event._value
                else:
                    cb(event)
                    if event._ok is False and not event._defused:
                        raise event._value
            else:
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    # An unhandled failure crashes the run, loudly.
                    raise event._value
            if event.__class__ is timeout_cls and grc(event) == 2 \
                    and len(pool) < pool_limit:
                if grc(callbacks) == 2:
                    callbacks.clear()
                    event.callbacks = callbacks
                else:
                    event.callbacks = []
                pool.append(event)
        if stop_event is None and until is not None:
            self._now = stop_time
        return None
