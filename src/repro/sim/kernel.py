"""Core event loop for the discrete-event simulation kernel.

The design follows the classic process-interaction style: simulation
processes are generator functions that yield :class:`Event` objects.  The
:class:`Environment` keeps a priority queue of scheduled events ordered by
``(time, priority, sequence)`` and resumes each waiting process when the
event it yielded is triggered.

Only virtual time exists here; nothing sleeps on the wall clock.  A four-day
cold-start campaign therefore costs only as many event dispatches as it
schedules.

This module is the hot path of every campaign, so it trades a little
repetition for dispatch rate: all classes carry ``__slots__``, the
frequent constructors (:class:`Timeout`, :class:`Initialize`) and
triggers push onto the queue directly instead of going through
:meth:`Environment.schedule`, and queue entries are ``(time, order,
event)`` 3-tuples where ``order`` packs ``(priority, sequence)`` into one
integer.  ``benchmarks/test_kernel_throughput.py`` tracks the events/sec
budget against the frozen seed kernel.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

#: Event scheduling priorities.  Lower sorts earlier at equal times.
URGENT = 0
NORMAL = 1

#: Queue entries order by ``priority * _PRIORITY_STRIDE + sequence`` so a
#: single integer comparison replaces the old (priority, sequence) pair.
#: 2**53 keeps every sequence number exactly representable and leaves
#: priorities dominant.
_PRIORITY_STRIDE = 2 ** 53


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. running a finished environment)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An event that may be waited on by processes.

    Events have three observable states: *pending* (created, not yet
    triggered), *triggered* (scheduled on the event queue with a value),
    and *processed* (callbacks have run).  A process that yields a
    triggered-or-processed event resumes immediately on the next dispatch.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: set when a failure value has been retrieved or defused
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception for failed events)."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        env = self.env
        sequence = env._sequence
        heappush(env._queue,
                 (env._now, _PRIORITY_STRIDE + sequence, self))
        env._sequence = sequence + 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        sequence = env._sequence
        heappush(env._queue,
                 (env._now + delay, _PRIORITY_STRIDE + sequence, self))
        env._sequence = sequence + 1


class Initialize(Event):
    """Internal event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        sequence = env._sequence
        heappush(env._queue, (env._now, sequence, self))   # URGENT
        env._sequence = sequence + 1


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event that triggers when the generator returns
    (successfully, with the ``StopIteration`` value) or raises.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def name(self) -> str:
        """The wrapped generator function's name (for diagnostics)."""
        return getattr(self._generator, "__name__", repr(self._generator))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=URGENT)
        # Detach from the event the process was waiting on, if any.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of the triggered event."""
        env = self.env
        env._active_process = self
        send = self._generator.send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as error:
                self._ok = False
                self._value = error
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name} yielded a non-event: {next_event!r}")
                self._ok = False
                self._value = error
                env.schedule(self)
                break

            callbacks = next_event.callbacks
            if callbacks is not None:
                # Event is pending or triggered-but-unprocessed: wait for it.
                callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: resume immediately with its value.
            event = next_event

        env._active_process = None


class ConditionValue:
    """Mapping from events to values for :class:`AllOf`/:class:`AnyOf`."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> list:
        return [event._value for event in self.events]

    def __repr__(self) -> str:
        return f"<ConditionValue {len(self.events)} events>"


class Condition(Event):
    """Composite event over a set of sub-events.

    Triggers when ``evaluate(events, done_count)`` returns True.  Failed
    sub-events propagate their exception to the condition.
    """

    __slots__ = ("_events", "_evaluate", "_done")

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list, int], bool],
                 events: Iterable[Event]):
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = None
        self._defused = False
        self._events = events = list(events)
        self._evaluate = evaluate
        self._done = 0
        for event in events:
            if event.env is not env:
                raise SimulationError("events from different environments")

        if not events:
            self.succeed(ConditionValue([]))
            return

        # One bound method for every subscription instead of one per
        # sub-event.
        check = self._check
        for event in events:
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _succeed_with_done(self) -> None:
        done = [e for e in self._events if e._ok is not None and e._ok]
        self.succeed(ConditionValue(done))

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        self._done += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._done):
            self._succeed_with_done()


def _all_done(events: list, done: int) -> bool:
    return done == len(events)


def _any_done(events: list, done: int) -> bool:
    return done >= 1


class AllOf(Condition):
    """Condition that triggers once *all* sub-events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, _all_done, events)

    def _check(self, event: Event) -> None:
        # Specialized: count-complete test without the evaluate() call.
        if self._ok is not None:
            return
        done = self._done = self._done + 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif done == len(self._events):
            # Every sub-event checked in without failing, so all are ok:
            # skip _succeed_with_done()'s per-event filtering.
            self.succeed(ConditionValue(self._events))


class AnyOf(Condition):
    """Condition that triggers once *any* sub-event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, _any_done, events)

    def _check(self, event: Event) -> None:
        # Specialized: the first sub-event settles the condition.
        if self._ok is not None:
            return
        self._done += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self._succeed_with_done()


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    __slots__ = ("_now", "_queue", "_sequence", "_active_process",
                 "_monitor")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._monitor: Optional[Callable[[float], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def monitor(self) -> Optional[Callable[[float], None]]:
        """Dispatch observer: called with the clock after every pop."""
        return self._monitor

    @monitor.setter
    def monitor(self, observer: Optional[Callable[[float], None]]) -> None:
        self._monitor = observer

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Place ``event`` on the queue ``delay`` time units from now."""
        sequence = self._sequence
        heappush(self._queue, (self._now + delay,
                               priority * _PRIORITY_STRIDE + sequence, event))
        self._sequence = sequence + 1

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that triggers ``delay`` time units from now."""
        # Inlined Timeout.__init__ (keep in sync): this is the single
        # hottest constructor, and skipping the __init__ frame is worth
        # the duplication.
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event.delay = delay
        sequence = self._sequence
        heappush(self._queue,
                 (self._now + delay, _PRIORITY_STRIDE + sequence, event))
        self._sequence = sequence + 1
        return event

    def event(self) -> Event:
        """Return a fresh, untriggered event."""
        # Inlined Event.__init__ (keep in sync), as with timeout().
        event = Event.__new__(Event)
        event.env = self
        event.callbacks = []
        event._value = None
        event._ok = None
        event._defused = False
        return event

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Return an event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Return an event that triggers when any of ``events`` has."""
        return AnyOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self, _pop=heappop) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, _, event = _pop(self._queue)
        monitor = self._monitor
        if monitor is not None:
            monitor(self._now)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # An unhandled failure crashes the simulation, loudly.
            raise event._value

    def run(self, until: Any = None, _pop=heappop) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a number (run
        until that simulated time), or an :class:`Event` (run until the
        event triggers, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until ({stop_time}) lies in the past (now={self._now})")

        # Both loops below inline step() — heap pop, clock advance,
        # monitor hook, callback fan-out, failure check — so the hot
        # path touches only locals.  Keep them in sync with step() when
        # editing either.
        queue = self._queue
        monitor = self._monitor

        if stop_event is None and stop_time == float("inf"):
            # Drain to exhaustion: no stop checks at all.
            while queue:
                self._now, _, event = _pop(queue)
                if monitor is not None:
                    monitor(self._now)
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    # An unhandled failure crashes the simulation, loudly.
                    raise event._value
            return None

        if stop_event is not None:
            # Dispatch until the stop event carries a value; as in
            # step()-driven runs, the stop event's own callbacks fire on
            # a later dispatch, not before returning.
            while stop_event._ok is None and queue:
                self._now, _, event = _pop(queue)
                if monitor is not None:
                    monitor(self._now)
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    # An unhandled failure crashes the simulation, loudly.
                    raise event._value
            if stop_event._ok is not None:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                "run(until=event) finished but the event never triggered")

        while queue:
            if queue[0][0] > stop_time:
                break
            self._now, _, event = _pop(queue)
            if monitor is not None:
                monitor(self._now)
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event._defused:
                # An unhandled failure crashes the simulation, loudly.
                raise event._value
        self._now = stop_time
        return None
