"""Seeded, named random-number streams.

Every stochastic component of the platform simulations draws from its own
named stream so that adding a new source of randomness does not perturb the
draws of existing components — campaigns stay reproducible as the codebase
grows.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _substream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """A family of independent :class:`numpy.random.Generator` streams.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get('cold_start').random()
    >>> b = RandomStreams(seed=7).get('cold_start').random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                _substream_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a new stream family seeded from this one and ``name``.

        Useful for giving each experiment iteration its own stream space.
        """
        return RandomStreams(_substream_seed(self.seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
