"""Probability distributions used by the platform latency models.

Each distribution is a small object with ``sample(rng)`` and ``mean()``;
platform calibration (:mod:`repro.platforms.calibration`) composes these
into cold-start, scheduling-delay and storage latency models.

All times are in seconds unless stated otherwise.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np


class Distribution:
    """Base class for latency distributions."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""
        raise NotImplementedError

    def mean(self) -> float:
        """Expected value (used by coarse capacity planning and tests)."""
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values (vectorised where the subclass allows)."""
        return np.array([self.sample(rng) for _ in range(n)])


class Constant(Distribution):
    """A degenerate distribution — always ``value``."""

    def __init__(self, value: float):
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value})"


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if high < low:
            raise ValueError(f"high ({high}) < low ({low})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Exponential(Distribution):
    """Exponential with the given mean."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class Normal(Distribution):
    """Normal truncated at zero (latencies cannot be negative)."""

    def __init__(self, mu: float, sigma: float):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return max(0.0, float(rng.normal(self.mu, self.sigma)))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.maximum(0.0, rng.normal(self.mu, self.sigma, size=n))

    def mean(self) -> float:
        # Truncation bias is negligible for the mu >> sigma cases we use.
        return self.mu

    def __repr__(self) -> str:
        return f"Normal(mu={self.mu}, sigma={self.sigma})"


class LogNormal(Distribution):
    """Log-normal parameterised by its *linear-space* median and sigma.

    ``median`` is the 50th percentile of the distribution itself (not of
    the underlying normal), which makes calibration against reported
    medians direct: ``LogNormal(median=40, sigma=1.0)`` has median 40.
    """

    def __init__(self, median: float, sigma: float):
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self._mu, self.sigma, size=n)

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma ** 2 / 2.0)

    def percentile(self, q: float) -> float:
        """Analytic percentile, ``q`` in [0, 100]."""
        from scipy.stats import norm
        return math.exp(self._mu + self.sigma * norm.ppf(q / 100.0))

    def __repr__(self) -> str:
        return f"LogNormal(median={self.median}, sigma={self.sigma})"


class Pareto(Distribution):
    """Pareto (heavy tail) with scale ``xm`` and shape ``alpha``."""

    def __init__(self, xm: float, alpha: float):
        if xm <= 0 or alpha <= 0:
            raise ValueError("xm and alpha must be positive")
        self.xm = float(xm)
        self.alpha = float(alpha)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.xm * (1.0 + rng.pareto(self.alpha)))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.xm * (1.0 + rng.pareto(self.alpha, size=n))

    def mean(self) -> float:
        if self.alpha <= 1:
            return float("inf")
        return self.alpha * self.xm / (self.alpha - 1.0)

    def __repr__(self) -> str:
        return f"Pareto(xm={self.xm}, alpha={self.alpha})"


class Shifted(Distribution):
    """A distribution offset by a constant floor."""

    def __init__(self, base: Distribution, offset: float):
        self.base = base
        self.offset = float(offset)

    def sample(self, rng: np.random.Generator) -> float:
        return self.offset + self.base.sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.offset + self.base.sample_many(rng, n)

    def mean(self) -> float:
        return self.offset + self.base.mean()

    def __repr__(self) -> str:
        return f"Shifted({self.base!r}, offset={self.offset})"


class Mixture(Distribution):
    """A weighted mixture of component distributions.

    Used for bimodal behaviours such as "usually warm container, sometimes
    cold" or the paper's Fig 14 scheduling-delay distribution (roughly half
    the workers wait ~40 s, a 5 % tail waits minutes).
    """

    def __init__(self, components: Sequence[Tuple[float, Distribution]]):
        if not components:
            raise ValueError("mixture needs at least one component")
        total = sum(weight for weight, _ in components)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self.components: List[Tuple[float, Distribution]] = [
            (weight / total, dist) for weight, dist in components]

    def sample(self, rng: np.random.Generator) -> float:
        pick = rng.random()
        cumulative = 0.0
        for weight, dist in self.components:
            cumulative += weight
            if pick <= cumulative:
                return dist.sample(rng)
        return self.components[-1][1].sample(rng)

    def mean(self) -> float:
        return sum(weight * dist.mean() for weight, dist in self.components)

    def __repr__(self) -> str:
        inner = ", ".join(f"{w:.3f}*{d!r}" for w, d in self.components)
        return f"Mixture({inner})"


class Empirical(Distribution):
    """Resamples from a fixed set of observed values."""

    def __init__(self, values: Sequence[float]):
        if len(values) == 0:
            raise ValueError("empirical distribution needs values")
        self.values = np.asarray(values, dtype=float)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self.values, size=n)

    def mean(self) -> float:
        return float(self.values.mean())

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.values)})"
