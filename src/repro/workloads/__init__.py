"""The paper's two case-study workloads.

:mod:`repro.workloads.ml` — the machine-learning training/inference
pipeline (§III-A): feature engineering, PCA, model selection over
RandomForest / KNeighbors / Lasso, and the inference path.

:mod:`repro.workloads.video` — the parallel video-processing workload
(§III-B): split → fan-out face detection → merge.

Workload code is platform-neutral: stage functions compute real results
(the regressors really fit, the detector really scans frames) and expose
calibrated :class:`~repro.platforms.base.WorkModel` durations for the
simulation clock.  Platform wiring lives in :mod:`repro.core.deployments`.
"""
