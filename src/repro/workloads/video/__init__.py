"""Video-processing workload (paper §III-B).

Split a video into chunks, run face detection on each chunk with an army
of parallel workers, merge the results.  The detector is a real
integral-image sliding-window classifier (the OpenCV stand-in) over
synthetic frames with planted faces, so detection accuracy is testable.
"""

from repro.workloads.video.video import (
    SyntheticVideo,
    VideoChunk,
    chunk_video,
    merge_chunks,
)
from repro.workloads.video.facedetect import (
    DetectionModel,
    FaceDetector,
    detect_faces_in_chunk,
)
from repro.workloads.video.pipeline import VideoPipeline, VideoResult

__all__ = [
    "DetectionModel",
    "FaceDetector",
    "SyntheticVideo",
    "VideoChunk",
    "VideoPipeline",
    "VideoResult",
    "chunk_video",
    "detect_faces_in_chunk",
    "merge_chunks",
]
