"""The video workload as platform-neutral stages plus an eager runner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.workloads.video.facedetect import (
    DetectionModel,
    detect_faces_in_chunk,
)
from repro.workloads.video.video import (
    MergedResult,
    SyntheticVideo,
    VideoChunk,
    chunk_video,
    merge_chunks,
)


@dataclass
class VideoResult:
    """Output of one full split → detect → merge run."""

    merged: MergedResult
    n_workers: int

    @property
    def detections(self) -> List[Tuple[int, int, int]]:
        return self.merged.detections


class VideoPipeline:
    """Eager, in-process runner for the three-step workflow (Figure 5)."""

    def __init__(self, video: SyntheticVideo,
                 model: Optional[DetectionModel] = None):
        self.video = video
        self.model = model or DetectionModel()

    def split(self, n_workers: int,
              max_chunk_bytes: Optional[int] = None) -> List[VideoChunk]:
        """Step 1: break the video into chunks."""
        return chunk_video(self.video, n_workers,
                           max_chunk_bytes=max_chunk_bytes)

    def detect(self, chunk: VideoChunk) -> List[Tuple[int, int, int]]:
        """Step 2 (per worker): face detection on one chunk."""
        return detect_faces_in_chunk(chunk, self.model)

    def merge(self, results: List[Tuple[int, List[Tuple[int, int, int]]]]
              ) -> MergedResult:
        """Step 3: aggregate worker outputs."""
        return merge_chunks(results)

    def run(self, n_workers: int,
            max_chunk_bytes: Optional[int] = None) -> VideoResult:
        """The whole workflow, sequentially, in-process."""
        chunks = self.split(n_workers, max_chunk_bytes=max_chunk_bytes)
        per_chunk = [(chunk.index, self.detect(chunk)) for chunk in chunks]
        return VideoResult(merged=self.merge(per_chunk),
                           n_workers=len(chunks))
