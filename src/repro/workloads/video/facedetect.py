"""Face detection: an integral-image sliding-window classifier.

The OpenCV/deep-model stand-in (§IV-A: "a face detection algorithm using
a pre-trained deep learning model.  The model size is 1 MB which is
fetched by each worker from the remote storage").  The detector uses
Haar-like features over an integral image — a real (if small) computer
vision kernel whose recall/precision on the synthetic frames is testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.storage.payload import MB
from repro.workloads.video.video import SyntheticVideo, VideoChunk


@dataclass
class DetectionModel:
    """The 'pre-trained model' workers fetch from remote storage.

    Thresholds for the Haar-like cascade below; ``payload_size`` is the
    paper's 1 MB.
    """

    window_sizes: Tuple[int, ...] = (16, 20, 24)
    stride: int = 4
    brightness_threshold: float = 0.55
    eye_contrast_threshold: float = 0.18
    payload_size: int = 1 * MB

    @property
    def name(self) -> str:
        return "haar-face-v1"


def integral_image(frame: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top/left border."""
    table = np.zeros((frame.shape[0] + 1, frame.shape[1] + 1))
    table[1:, 1:] = frame.cumsum(axis=0).cumsum(axis=1)
    return table


def box_sum(table: np.ndarray, top: int, left: int, height: int,
            width: int) -> float:
    """Sum of the frame region ``[top:top+height, left:left+width]``."""
    return float(table[top + height, left + width] - table[top, left + width]
                 - table[top + height, left] + table[top, left])


class FaceDetector:
    """Sliding-window detector using two Haar-like tests.

    A window is a face when (1) it is brighter than its surroundings and
    (2) the eye band is darker than the cheek band — matching the pattern
    :func:`~repro.workloads.video.video._draw_face` plants.
    """

    def __init__(self, model: DetectionModel):
        self.model = model

    def detect_frame(self, frame: np.ndarray) -> List[Tuple[int, int]]:
        """Detected (row, col) face positions in one frame."""
        table = integral_image(frame)
        height, width = frame.shape
        hits: List[Tuple[int, int, int]] = []
        for window in self.model.window_sizes:
            if window > min(height, width):
                continue
            area = float(window * window)
            for top in range(0, height - window + 1, self.model.stride):
                for left in range(0, width - window + 1, self.model.stride):
                    mean = box_sum(table, top, left, window, window) / area
                    if mean < self.model.brightness_threshold:
                        continue
                    band = max(2, window // 5)
                    eye_top = top + window // 4
                    eye_mean = box_sum(table, eye_top, left, band,
                                       window) / (band * window)
                    cheek_top = top + window // 2
                    cheek_mean = box_sum(table, cheek_top, left, band,
                                         window) / (band * window)
                    if (cheek_mean - eye_mean
                            >= self.model.eye_contrast_threshold):
                        hits.append((top, left, window))
        return _suppress_overlaps(hits)

    def detect_chunk(self, chunk: VideoChunk) -> List[Tuple[int, int, int]]:
        """All (frame, row, col) detections in a chunk."""
        detections: List[Tuple[int, int, int]] = []
        for frame_index, frame in chunk.video.frames(chunk.start_frame,
                                                     chunk.stop_frame):
            for row, col in self.detect_frame(frame):
                detections.append((frame_index, row, col))
        return detections


def _suppress_overlaps(
        hits: List[Tuple[int, int, int]]) -> List[Tuple[int, int]]:
    """Greedy non-maximum suppression: keep the first window per region."""
    kept: List[Tuple[int, int, int]] = []
    for top, left, window in sorted(hits, key=lambda hit: -hit[2]):
        center = (top + window / 2.0, left + window / 2.0)
        overlaps = any(
            abs(center[0] - (k_top + k_window / 2.0)) < k_window * 0.6
            and abs(center[1] - (k_left + k_window / 2.0)) < k_window * 0.6
            for k_top, k_left, k_window in kept)
        if not overlaps:
            kept.append((top, left, window))
    return [(top, left) for top, left, _ in kept]


#: Cache of real per-chunk detections, keyed by the chunk identity — the
#: measurement campaigns re-run identical chunks hundreds of times.
_DETECTION_CACHE: dict = {}


def detect_faces_in_chunk(chunk: VideoChunk,
                          model: DetectionModel) -> List[Tuple[int, int, int]]:
    """Memoized real detection on a chunk."""
    key = (chunk.video.seed, chunk.video.n_frames, chunk.video.height,
           chunk.video.width, chunk.start_frame, chunk.stop_frame,
           model.name)
    if key not in _DETECTION_CACHE:
        _DETECTION_CACHE[key] = FaceDetector(model).detect_chunk(chunk)
    return _DETECTION_CACHE[key]
