"""Synthetic video: frame generation, chunking and merging.

Stands in for the paper's 100 MB Sintel clip (§IV-A).  A
:class:`SyntheticVideo` is a deterministic sequence of grayscale frames
with "faces" (bright two-eyes-and-mouth patterns) planted at known
positions, so the detector downstream has ground truth to be tested
against.  Frames are generated lazily from the seed — a chunk's payload
travels as ``(video params, frame range)``, whose *declared* size models
the real encoded bytes, exactly like the paper's chunks that must fit the
platform payload limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.payload import KB, MB


@dataclass(frozen=True)
class PlantedFace:
    """Ground truth: one face at (row, col) in a given frame."""

    frame_index: int
    row: int
    col: int
    size: int


class SyntheticVideo:
    """A deterministic synthetic video with planted faces.

    >>> video = SyntheticVideo(n_frames=10, seed=1)
    >>> video.frame(0).shape
    (72, 128)
    """

    def __init__(self, n_frames: int = 240, height: int = 72,
                 width: int = 128, seed: int = 0,
                 faces_per_frame: float = 1.0,
                 bytes_per_frame: Optional[int] = None):
        if n_frames <= 0:
            raise ValueError("n_frames must be positive")
        if height < 24 or width < 24:
            raise ValueError("frames must be at least 24x24")
        self.n_frames = n_frames
        self.height = height
        self.width = width
        self.seed = seed
        self.faces_per_frame = faces_per_frame
        #: modeled encoded size per frame (raw grayscale by default)
        self.bytes_per_frame = bytes_per_frame or (height * width)
        self._ground_truth: List[PlantedFace] = []
        self._plant_faces()

    @property
    def total_bytes(self) -> int:
        """Modeled size of the encoded video."""
        return self.n_frames * self.bytes_per_frame

    @property
    def ground_truth(self) -> List[PlantedFace]:
        return list(self._ground_truth)

    def faces_in_range(self, start: int, stop: int) -> List[PlantedFace]:
        """Planted faces within frames ``[start, stop)``."""
        return [face for face in self._ground_truth
                if start <= face.frame_index < stop]

    def _plant_faces(self) -> None:
        rng = np.random.default_rng(self.seed)
        for frame_index in range(self.n_frames):
            count = rng.poisson(self.faces_per_frame)
            for _ in range(count):
                size = int(rng.integers(16, 25))
                row = int(rng.integers(0, self.height - size))
                col = int(rng.integers(0, self.width - size))
                self._ground_truth.append(
                    PlantedFace(frame_index, row, col, size))

    def frame(self, index: int) -> np.ndarray:
        """Render frame ``index`` (background noise + planted faces)."""
        if not 0 <= index < self.n_frames:
            raise IndexError(f"frame {index} out of range")
        rng = np.random.default_rng((self.seed, index))
        frame = rng.normal(loc=0.25, scale=0.05,
                           size=(self.height, self.width))
        for face in self.faces_in_range(index, index + 1):
            _draw_face(frame, face)
        return np.clip(frame, 0.0, 1.0)

    def frames(self, start: int, stop: int):
        """Iterate frames in ``[start, stop)``."""
        for index in range(start, min(stop, self.n_frames)):
            yield index, self.frame(index)


def _draw_face(frame: np.ndarray, face: PlantedFace) -> None:
    """Draw a bright face-like pattern: oval + dark eyes + dark mouth."""
    size = face.size
    patch = frame[face.row:face.row + size, face.col:face.col + size]
    rows, cols = np.mgrid[0:size, 0:size]
    center = (size - 1) / 2.0
    oval = ((rows - center) ** 2 + (cols - center) ** 2) <= (size / 2.0) ** 2
    patch[oval] = 0.85
    eye = max(1, size // 8)
    eye_row = size // 3
    for eye_col in (size // 3, 2 * size // 3):
        patch[eye_row - eye // 2:eye_row + eye // 2 + 1,
              eye_col - eye // 2:eye_col + eye // 2 + 1] = 0.15
    mouth_row = 2 * size // 3
    patch[mouth_row:mouth_row + max(1, eye // 2) + 1,
          size // 3:2 * size // 3] = 0.2


@dataclass
class VideoChunk:
    """A contiguous frame range — the unit of parallel work.

    ``payload_size`` models the encoded bytes of this range, which is
    what the platform payload limits apply to.
    """

    video: SyntheticVideo
    index: int
    start_frame: int
    stop_frame: int

    @property
    def n_frames(self) -> int:
        return self.stop_frame - self.start_frame

    @property
    def payload_size(self) -> int:
        return 64 + self.n_frames * self.video.bytes_per_frame


@dataclass
class MergedResult:
    """Output of the merge step: all detections in frame order."""

    n_chunks: int
    detections: List[Tuple[int, int, int]]   # (frame, row, col)
    payload_size: int = 0

    def __post_init__(self):
        if not self.payload_size:
            self.payload_size = 64 + 24 * len(self.detections)


def chunk_video(video: SyntheticVideo, n_chunks: int,
                max_chunk_bytes: Optional[int] = None) -> List[VideoChunk]:
    """Split into ``n_chunks`` contiguous chunks (the paper's first step).

    If ``max_chunk_bytes`` is given (the platform payload limit), the
    chunk count is raised as needed so every chunk fits — the paper: "the
    size of each chunk depends on the underlying payload size limit of
    each platform".
    """
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    n_chunks = min(n_chunks, video.n_frames)
    if max_chunk_bytes is not None:
        frames_per_chunk_cap = max(
            1, (max_chunk_bytes - 64) // video.bytes_per_frame)
        min_chunks = -(-video.n_frames // frames_per_chunk_cap)
        n_chunks = max(n_chunks, min_chunks)
        n_chunks = min(n_chunks, video.n_frames)
    boundaries = np.linspace(0, video.n_frames, n_chunks + 1).astype(int)
    chunks = []
    for index in range(n_chunks):
        start, stop = int(boundaries[index]), int(boundaries[index + 1])
        if start == stop:
            continue
        chunks.append(VideoChunk(video=video, index=index,
                                 start_frame=start, stop_frame=stop))
    return chunks


def merge_chunks(
        chunk_detections: Sequence[Tuple[int, List[Tuple[int, int, int]]]]
) -> MergedResult:
    """The paper's final step: aggregate worker outputs in frame order."""
    ordered = sorted(chunk_detections, key=lambda item: item[0])
    detections: List[Tuple[int, int, int]] = []
    for _, found in ordered:
        detections.extend(found)
    detections.sort()
    return MergedResult(n_chunks=len(ordered), detections=detections)
