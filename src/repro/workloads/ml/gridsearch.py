"""Hyper-parameter grid search over the model-selection space.

The paper's model selection "searches through different algorithms with a
range of parameters" (§IV-A).  :class:`ParameterGrid` expands parameter
ranges sklearn-style; :class:`GridSearch` turns per-algorithm grids into
:class:`~repro.workloads.ml.selection.ModelCandidate` lists and fits them
all, reusing the selection machinery the deployments already exercise.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.workloads.ml.selection import (
    CandidateResult,
    ModelCandidate,
    select_best,
    train_candidate,
)


class ParameterGrid:
    """The cartesian product of parameter ranges.

    >>> grid = ParameterGrid({"a": [1, 2], "b": ["x"]})
    >>> len(grid)
    2
    >>> sorted(point["a"] for point in grid)
    [1, 2]
    """

    def __init__(self, grid: Dict[str, Sequence[Any]]):
        if not grid:
            raise ValueError("parameter grid must not be empty")
        for name, values in grid.items():
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise ValueError(
                    f"parameter {name!r} needs a non-empty list of values")
        self.grid = {name: list(values) for name, values in grid.items()}

    def __len__(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        names = sorted(self.grid)
        for combination in itertools.product(
                *(self.grid[name] for name in names)):
            yield dict(zip(names, combination))


#: Algorithms whose training the deployments treat as "heavy" (the paper
#: trains them in sub-orchestrators rather than entities).
HEAVY_ALGORITHMS = {"random_forest"}


def grid_candidates(algorithm: str, grid: Dict[str, Sequence[Any]],
                    prefix: Optional[str] = None) -> List[ModelCandidate]:
    """One :class:`ModelCandidate` per grid point."""
    prefix = prefix or algorithm
    candidates = []
    for index, params in enumerate(ParameterGrid(grid)):
        label = "-".join(f"{key}={params[key]}" for key in sorted(params))
        candidates.append(ModelCandidate(
            name=f"{prefix}[{label}]" if label else f"{prefix}[{index}]",
            algorithm=algorithm, params=dict(params),
            heavy=algorithm in HEAVY_ALGORITHMS))
    return candidates


class GridSearch:
    """Fit every candidate from per-algorithm grids; keep the best."""

    def __init__(self, grids: Dict[str, Dict[str, Sequence[Any]]]):
        if not grids:
            raise ValueError("grid search needs at least one algorithm")
        self.candidates: List[ModelCandidate] = []
        for algorithm, grid in grids.items():
            self.candidates.extend(grid_candidates(algorithm, grid))
        self.results_: List[CandidateResult] = []
        self.best_: Optional[CandidateResult] = None

    def fit(self, train_features: np.ndarray, train_targets: np.ndarray,
            validation_features: np.ndarray,
            validation_targets: np.ndarray) -> "GridSearch":
        """Train and score every candidate; populate ``best_``."""
        self.results_ = [
            train_candidate(candidate, train_features, train_targets,
                            validation_features, validation_targets)
            for candidate in self.candidates]
        self.best_ = select_best(self.results_)
        return self

    def leaderboard(self) -> List[CandidateResult]:
        """Results sorted best-first."""
        if not self.results_:
            raise RuntimeError("GridSearch.fit() has not been called")
        return sorted(self.results_, key=lambda result: result.error)
