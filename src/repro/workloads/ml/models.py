"""Regression models implemented from scratch on numpy.

The paper's model-selection step (§IV-A) "search[es] through
RandomForestRegressor, KNeighborsRegressor, and Lasso to find the best
fit model".  These are working implementations of all three — a slow
ensemble, a lazy learner whose payload is its training set, and a linear
model — with honest ``payload_size`` values, because the paper's model
sizes ("ranging from 100 KB to 5.2 MB") drive its payload-limit and
storage behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (1 is perfect, 0 is mean-predictor)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0.0:
        return 0.0
    residual = float(np.sum((y_true - y_pred) ** 2))
    return 1.0 - residual / total


class NotFittedError(RuntimeError):
    """predict() was called before fit()."""


def _check_fit_inputs(features: np.ndarray,
                      targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if targets.ndim != 1 or len(targets) != len(features):
        raise ValueError(
            f"targets must be 1-D with {len(features)} entries, "
            f"got shape {targets.shape}")
    if len(features) == 0:
        raise ValueError("cannot fit on an empty dataset")
    return features, targets


# -- decision tree (the random forest's base learner) ---------------------------

@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class DecisionTreeRegressor:
    """CART regression tree with random feature sub-sampling."""

    def __init__(self, max_depth: int = 8, min_samples_split: int = 4,
                 max_features: Optional[int] = None, n_thresholds: int = 12,
                 seed: int = 0):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.max_features = max_features
        self.n_thresholds = max(1, n_thresholds)
        self.seed = seed
        self.root_: Optional[_Node] = None
        self.node_count_ = 0

    def fit(self, features: np.ndarray,
            targets: np.ndarray) -> "DecisionTreeRegressor":
        features, targets = _check_fit_inputs(features, targets)
        rng = np.random.default_rng(self.seed)
        self.node_count_ = 0
        # Threshold grids are quantiles of the *whole* training column,
        # computed once per fit: nodes then scan a slice of a fixed grid
        # instead of re-sorting their rows (a large constant-factor win).
        quantiles = np.linspace(0.0, 1.0, self.n_thresholds + 2)[1:-1]
        self._grids = [np.unique(np.quantile(features[:, j], quantiles))
                       for j in range(features.shape[1])]
        self.root_ = self._build(features, targets, depth=0, rng=rng)
        return self

    def _build(self, features: np.ndarray, targets: np.ndarray, depth: int,
               rng: np.random.Generator) -> _Node:
        self.node_count_ += 1
        node_value = float(targets.mean())
        if (depth >= self.max_depth
                or len(targets) < self.min_samples_split
                or np.ptp(targets) == 0.0):
            return _Node(value=node_value)

        n_features = features.shape[1]
        k = self.max_features or max(1, int(np.sqrt(n_features)))
        candidates = rng.choice(n_features, size=min(k, n_features),
                                replace=False)

        n_rows = len(targets)
        total_sum = float(targets.sum())
        total_sq = float((targets ** 2).sum())
        best = None  # (sse, feature, threshold)
        for feature in candidates:
            column = features[:, feature]
            thresholds = self._grids[feature]
            if len(thresholds) == 0:
                continue
            # Vectorised scan: left-side counts/sums for every threshold.
            mask = column[:, None] <= thresholds[None, :]
            left_count = mask.sum(axis=0)
            valid = (left_count > 0) & (left_count < n_rows)
            if not valid.any():
                continue
            left_sum = targets @ mask
            right_count = n_rows - left_count
            right_sum = total_sum - left_sum
            with np.errstate(divide="ignore", invalid="ignore"):
                # SSE = Σy² - (Σy_left)²/n_left - (Σy_right)²/n_right
                sse = (total_sq
                       - np.where(valid, left_sum ** 2 / left_count, 0.0)
                       - np.where(valid, right_sum ** 2 / right_count, 0.0))
            sse[~valid] = np.inf
            index = int(np.argmin(sse))
            if np.isfinite(sse[index]) and (best is None
                                            or sse[index] < best[0]):
                best = (float(sse[index]), int(feature),
                        float(thresholds[index]))

        if best is None:
            return _Node(value=node_value)
        _, feature, threshold = best
        mask = features[:, feature] <= threshold
        return _Node(
            feature=feature, threshold=threshold, value=node_value,
            left=self._build(features[mask], targets[mask], depth + 1, rng),
            right=self._build(features[~mask], targets[~mask], depth + 1,
                              rng))

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise NotFittedError("DecisionTreeRegressor.fit() not called")
        features = np.asarray(features, dtype=float)
        predictions = np.empty(len(features))
        self._route(self.root_, features, np.arange(len(features)),
                    predictions)
        return predictions

    def _route(self, node: _Node, features: np.ndarray, indices: np.ndarray,
               out: np.ndarray) -> None:
        """Vectorised prediction: route index blocks down the tree."""
        if node.is_leaf or len(indices) == 0:
            out[indices] = node.value
            return
        mask = features[indices, node.feature] <= node.threshold
        self._route(node.left, features, indices[mask], out)
        self._route(node.right, features, indices[~mask], out)

    @property
    def payload_size(self) -> int:
        """Serialized size: ~64 bytes per node (sklearn-like node arrays)."""
        return 128 + self.node_count_ * 64


class RandomForestRegressor:
    """Bagged ensemble of CART trees — the paper's "larger model"."""

    def __init__(self, n_estimators: int = 10, max_depth: int = 8,
                 min_samples_split: int = 4,
                 max_features: Optional[int] = None, seed: int = 0):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.trees_: List[DecisionTreeRegressor] = []

    def fit(self, features: np.ndarray,
            targets: np.ndarray) -> "RandomForestRegressor":
        features, targets = _check_fit_inputs(features, targets)
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        n_rows = len(features)
        for index in range(self.n_estimators):
            sample = rng.integers(0, n_rows, n_rows)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2 ** 31)))
            tree.fit(features[sample], targets[sample])
            self.trees_.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise NotFittedError("RandomForestRegressor.fit() not called")
        predictions = np.zeros(len(features))
        for tree in self.trees_:
            predictions += tree.predict(features)
        return predictions / len(self.trees_)

    @property
    def payload_size(self) -> int:
        return 256 + sum(tree.payload_size for tree in self.trees_)


class KNeighborsRegressor:
    """k-nearest-neighbours — the paper's "smaller and faster model".

    Fitting is trivial; the payload is the whole training set, which is
    what makes its serialized size a "few MBs" at 10 K rows — the kind of
    state the paper persists inside durable entities.
    """

    def __init__(self, n_neighbors: int = 5, chunk_size: int = 512):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        self.n_neighbors = n_neighbors
        self.chunk_size = max(1, chunk_size)
        self.features_: Optional[np.ndarray] = None
        self.targets_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray,
            targets: np.ndarray) -> "KNeighborsRegressor":
        features, targets = _check_fit_inputs(features, targets)
        self.features_ = features
        self.targets_ = targets
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.features_ is None:
            raise NotFittedError("KNeighborsRegressor.fit() not called")
        features = np.asarray(features, dtype=float)
        k = min(self.n_neighbors, len(self.features_))
        predictions = np.empty(len(features))
        train_sq = np.sum(self.features_ ** 2, axis=1)
        for start in range(0, len(features), self.chunk_size):
            block = features[start:start + self.chunk_size]
            distances = (np.sum(block ** 2, axis=1)[:, None]
                         - 2.0 * block @ self.features_.T + train_sq[None, :])
            nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
            predictions[start:start + len(block)] = (
                self.targets_[nearest].mean(axis=1))
        return predictions

    @property
    def payload_size(self) -> int:
        if self.features_ is None:
            return 64
        return 128 + (self.features_.size + self.targets_.size) * 8


class LassoRegressor:
    """L1-regularised linear regression via coordinate descent."""

    def __init__(self, alpha: float = 1.0, max_iter: int = 500,
                 tol: float = 1e-6):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, features: np.ndarray,
            targets: np.ndarray) -> "LassoRegressor":
        features, targets = _check_fit_inputs(features, targets)
        n_rows, n_cols = features.shape
        x_mean = features.mean(axis=0)
        y_mean = targets.mean()
        x_centered = features - x_mean
        y_centered = targets - y_mean

        coef = np.zeros(n_cols)
        column_sq = np.sum(x_centered ** 2, axis=0)
        residual = y_centered.copy()
        threshold = self.alpha * n_rows
        for iteration in range(self.max_iter):
            max_delta = 0.0
            for j in range(n_cols):
                if column_sq[j] == 0.0:
                    continue
                rho = x_centered[:, j] @ residual + coef[j] * column_sq[j]
                new_coef = _soft_threshold(rho, threshold) / column_sq[j]
                delta = new_coef - coef[j]
                if delta != 0.0:
                    residual -= delta * x_centered[:, j]
                    coef[j] = new_coef
                    max_delta = max(max_delta, abs(delta))
            self.n_iter_ = iteration + 1
            if max_delta < self.tol:
                break
        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise NotFittedError("LassoRegressor.fit() not called")
        features = np.asarray(features, dtype=float)
        return features @ self.coef_ + self.intercept_

    @property
    def payload_size(self) -> int:
        if self.coef_ is None:
            return 64
        return 128 + self.coef_.size * 8


def _soft_threshold(value: float, threshold: float) -> float:
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0
