"""Principal component analysis via SVD — the dimension-reduction step.

The paper (§IV-A): "Dimension reduction is based on the Principal
Component Analysis (PCA), and makes use of the sklearn.decomposition
library".  This is the numpy equivalent: center, SVD, project.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class PCA:
    """Project onto the top ``n_components`` principal directions.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(100, 5)) @ rng.normal(size=(5, 5))
    >>> reduced = PCA(n_components=2).fit(data).transform(data)
    >>> reduced.shape
    (100, 2)
    """

    def __init__(self, n_components: int):
        if n_components <= 0:
            raise ValueError("n_components must be positive")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, matrix: np.ndarray) -> "PCA":
        """Learn the principal directions of ``matrix`` (rows = samples)."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
        n_rows, n_cols = matrix.shape
        if self.n_components > min(n_rows, n_cols):
            raise ValueError(
                f"n_components={self.n_components} exceeds "
                f"min(n_rows, n_cols)={min(n_rows, n_cols)}")
        self.mean_ = matrix.mean(axis=0)
        centered = matrix - self.mean_
        _, singular_values, v_transposed = np.linalg.svd(
            centered, full_matrices=False)
        self.components_ = v_transposed[:self.n_components]
        variances = singular_values ** 2
        total = variances.sum()
        self.explained_variance_ratio_ = (
            variances[:self.n_components] / total if total > 0
            else np.zeros(self.n_components))
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Project ``matrix`` onto the fitted components."""
        if self.components_ is None:
            raise RuntimeError("PCA.fit() has not been called")
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} columns, "
                f"got {matrix.shape[1]}")
        return (matrix - self.mean_) @ self.components_.T

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)

    @property
    def payload_size(self) -> int:
        """Serialized size of the projection (mean + components)."""
        if self.components_ is None:
            return 64
        return 64 + (self.mean_.size + self.components_.size) * 8
