"""Machine-learning pipeline workload (paper §III-A).

A regression model for car pricing: feature engineering (one-hot
encoding + scaling), PCA dimension reduction, and model selection across
RandomForest, KNeighbors and Lasso — all implemented from scratch on
numpy, standing in for the paper's sklearn stack.
"""

from repro.workloads.ml.dataset import (
    CarPricingDataset,
    Frame,
    make_car_pricing_dataset,
    train_test_split,
)
from repro.workloads.ml.preprocess import MinMaxScaler, OneHotEncoder
from repro.workloads.ml.pca import PCA
from repro.workloads.ml.models import (
    KNeighborsRegressor,
    LassoRegressor,
    RandomForestRegressor,
    mean_squared_error,
    r2_score,
)
from repro.workloads.ml.gridsearch import (
    GridSearch,
    ParameterGrid,
    grid_candidates,
)
from repro.workloads.ml.selection import (
    CandidateResult,
    ModelCandidate,
    default_candidates,
    select_best,
)

__all__ = [
    "CandidateResult",
    "CarPricingDataset",
    "Frame",
    "GridSearch",
    "KNeighborsRegressor",
    "LassoRegressor",
    "MinMaxScaler",
    "ModelCandidate",
    "OneHotEncoder",
    "PCA",
    "ParameterGrid",
    "RandomForestRegressor",
    "default_candidates",
    "grid_candidates",
    "make_car_pricing_dataset",
    "mean_squared_error",
    "r2_score",
    "select_best",
    "train_test_split",
]
