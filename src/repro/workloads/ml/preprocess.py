"""Feature engineering: one-hot encoding and min-max scaling.

The paper's data-preparation step (§III-A Figure 2): "non-numerical data
are encoded, and scaled to a specific range".  Both transformers follow
the sklearn fit/transform idiom and declare their serialized size so that
payload-limit behaviour is realistic when they travel between functions
or persist inside durable entities.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.workloads.ml.dataset import Frame


class NotFittedError(RuntimeError):
    """transform() was called before fit()."""


class OneHotEncoder:
    """One-hot encodes the categorical columns of a :class:`Frame`.

    Unknown categories at transform time map to the all-zeros vector
    (sklearn's ``handle_unknown='ignore'``).
    """

    def __init__(self):
        self.categories_: Optional[Dict[str, List[str]]] = None

    def fit(self, frame: Frame) -> "OneHotEncoder":
        """Learn category vocabularies from the categorical columns."""
        self.categories_ = {
            name: sorted({str(value) for value in frame[name]})
            for name in frame.categorical_columns}
        return self

    def transform(self, frame: Frame) -> np.ndarray:
        """Encode to a dense (n_rows, total_categories) 0/1 matrix."""
        if self.categories_ is None:
            raise NotFittedError("OneHotEncoder.fit() has not been called")
        blocks = []
        for name, levels in self.categories_.items():
            index = {level: position for position, level in enumerate(levels)}
            block = np.zeros((frame.n_rows, len(levels)))
            for row, value in enumerate(frame[name]):
                position = index.get(str(value))
                if position is not None:
                    block[row, position] = 1.0
            blocks.append(block)
        return np.hstack(blocks) if blocks else np.zeros((frame.n_rows, 0))

    def fit_transform(self, frame: Frame) -> np.ndarray:
        return self.fit(frame).transform(frame)

    @property
    def n_output_features(self) -> int:
        if self.categories_ is None:
            raise NotFittedError("OneHotEncoder.fit() has not been called")
        return sum(len(levels) for levels in self.categories_.values())

    @property
    def payload_size(self) -> int:
        """Serialized size: vocabularies plus framing."""
        if self.categories_ is None:
            return 64
        return 64 + sum(
            len(name) + sum(len(level) + 2 for level in levels)
            for name, levels in self.categories_.items())


class MinMaxScaler:
    """Scales numeric features to ``[0, 1]`` column-wise.

    Constant columns map to 0 (no divide-by-zero).
    """

    def __init__(self):
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, matrix: np.ndarray) -> "MinMaxScaler":
        """Learn per-column min and range."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
        self.min_ = matrix.min(axis=0)
        span = matrix.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.range_ = span
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler.fit() has not been called")
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape[1] != self.min_.shape[0]:
            raise ValueError(
                f"expected {self.min_.shape[0]} columns, got {matrix.shape[1]}")
        return (matrix - self.min_) / self.range_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)

    @property
    def payload_size(self) -> int:
        if self.min_ is None:
            return 64
        return 64 + 2 * self.min_.size * 8
