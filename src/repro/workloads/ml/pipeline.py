"""The end-to-end ML pipeline as pure, platform-neutral stage functions.

Stages correspond 1:1 to the boxes of the paper's Figure 2/3: data
preparation → dimension reduction → parallel model training → best-fit
selection, plus the inference path of Figure 4.

``MLPipeline`` also provides a memoizing runner: repeated executions with
identical inputs (the hundred-iteration measurement campaigns of §IV-A)
reuse the first run's real results, so campaigns stay fast while every
artifact in the system is genuinely computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.workloads.ml.dataset import CarPricingDataset, train_test_split
from repro.workloads.ml.pca import PCA
from repro.workloads.ml.preprocess import MinMaxScaler, OneHotEncoder
from repro.workloads.ml.selection import (
    CandidateResult,
    ModelCandidate,
    default_candidates,
    select_best,
    train_candidate,
)


@dataclass
class PreparedData:
    """Output of the data-preparation stage."""

    matrix: np.ndarray
    encoder: OneHotEncoder
    scaler: MinMaxScaler

    @property
    def payload_size(self) -> int:
        return self.matrix.size * 8 + 128


@dataclass
class ReducedData:
    """Output of the dimension-reduction stage."""

    matrix: np.ndarray
    pca: PCA

    @property
    def payload_size(self) -> int:
        return self.matrix.size * 8 + 128


@dataclass
class TrainedPipeline:
    """Everything the training workflow produces."""

    encoder: OneHotEncoder
    scaler: MinMaxScaler
    pca: PCA
    results: List[CandidateResult]
    best: CandidateResult


def prepare_data(dataset: CarPricingDataset) -> PreparedData:
    """Stage 1 — encode categoricals, scale numerics, concatenate."""
    encoder = OneHotEncoder().fit(dataset.features)
    encoded = encoder.transform(dataset.features)
    scaler = MinMaxScaler().fit(dataset.features.numeric_matrix())
    scaled = scaler.transform(dataset.features.numeric_matrix())
    return PreparedData(matrix=np.hstack([scaled, encoded]),
                        encoder=encoder, scaler=scaler)


def apply_preparation(dataset: CarPricingDataset, encoder: OneHotEncoder,
                      scaler: MinMaxScaler) -> np.ndarray:
    """Stage 1 at inference time — reuse fitted transformers."""
    encoded = encoder.transform(dataset.features)
    scaled = scaler.transform(dataset.features.numeric_matrix())
    return np.hstack([scaled, encoded])


def reduce_dimensions(prepared: np.ndarray,
                      n_components: int = 40) -> ReducedData:
    """Stage 2 — PCA projection."""
    n_components = min(n_components, min(prepared.shape))
    pca = PCA(n_components=n_components).fit(prepared)
    return ReducedData(matrix=pca.transform(prepared), pca=pca)


def split_for_validation(matrix: np.ndarray, targets: np.ndarray,
                         fraction: float = 0.25,
                         seed: int = 0) -> Tuple[np.ndarray, np.ndarray,
                                                 np.ndarray, np.ndarray]:
    """Hold out a validation slice for model selection."""
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(matrix))
    n_validation = max(1, int(round(len(matrix) * fraction)))
    validation, train = indices[:n_validation], indices[n_validation:]
    return (matrix[train], targets[train],
            matrix[validation], targets[validation])


def run_training_pipeline(dataset: CarPricingDataset,
                          candidates: Optional[List[ModelCandidate]] = None,
                          n_components: int = 40,
                          seed: int = 0) -> TrainedPipeline:
    """The whole Figure 2 workflow, executed eagerly in-process."""
    candidates = candidates if candidates is not None else default_candidates(
        seed)
    prepared = prepare_data(dataset)
    reduced = reduce_dimensions(prepared.matrix, n_components)
    (train_x, train_y,
     validation_x, validation_y) = split_for_validation(
        reduced.matrix, dataset.prices, seed=seed)
    results = [
        train_candidate(candidate, train_x, train_y,
                        validation_x, validation_y)
        for candidate in candidates]
    return TrainedPipeline(
        encoder=prepared.encoder, scaler=prepared.scaler, pca=reduced.pca,
        results=results, best=select_best(results))


def run_inference(dataset: CarPricingDataset,
                  trained: TrainedPipeline) -> np.ndarray:
    """The Figure 4 workflow: prep chain → best model → predictions."""
    prepared = apply_preparation(dataset, trained.encoder, trained.scaler)
    reduced = trained.pca.transform(prepared)
    return trained.best.model.predict(reduced)


class MLPipeline:
    """Memoizing pipeline runner for measurement campaigns.

    The paper collects "over one hundred iterations of each
    implementation" (§IV-A); each iteration re-executes identical compute.
    The first call per (dataset, config) key runs the real pipeline; later
    calls reuse the artifacts, so simulated campaigns don't pay the numpy
    bill a hundred times.
    """

    def __init__(self, n_components: int = 40, seed: int = 0,
                 candidates: Optional[List[ModelCandidate]] = None):
        self.n_components = n_components
        self.seed = seed
        self.candidates = (candidates if candidates is not None
                           else default_candidates(seed))
        self._trained: Dict[str, TrainedPipeline] = {}
        self._predictions: Dict[Tuple[str, str], np.ndarray] = {}

    def train(self, dataset: CarPricingDataset) -> TrainedPipeline:
        """Train (or recall) the pipeline for ``dataset``."""
        key = dataset.name
        if key not in self._trained:
            self._trained[key] = run_training_pipeline(
                dataset, candidates=self.candidates,
                n_components=self.n_components, seed=self.seed)
        return self._trained[key]

    def infer(self, train_dataset: CarPricingDataset,
              test_dataset: CarPricingDataset) -> np.ndarray:
        """Predict (or recall predictions) for ``test_dataset``."""
        key = (train_dataset.name, test_dataset.name)
        if key not in self._predictions:
            trained = self.train(train_dataset)
            self._predictions[key] = run_inference(test_dataset, trained)
        return self._predictions[key]
