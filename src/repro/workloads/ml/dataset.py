"""Synthetic car-pricing dataset.

Stands in for the paper's car-pricing regression data (§IV-A): "The
datasets have 26 features, 12 of which are not numerical and require
encoding and scaling during the feature engineering steps", tested at two
scales — "small and large, with 200 and 10 K rows".

Prices come from a ground-truth function of the features plus noise, so
the pipeline's models have real signal to learn and model selection is a
meaningful comparison, not noise-fitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: 14 numeric + 12 categorical = 26 features, matching the paper.
NUMERIC_FEATURES = [
    "year", "mileage_km", "engine_cc", "horsepower", "torque_nm",
    "curb_weight_kg", "length_mm", "width_mm", "height_mm", "wheelbase_mm",
    "fuel_economy_l100km", "top_speed_kmh", "acceleration_s", "num_owners",
]

CATEGORICAL_FEATURES = {
    "make": ["toyo", "hond", "ford", "bmw", "merc", "audi", "kia", "fiat"],
    "fuel_type": ["gas", "diesel", "hybrid", "electric"],
    "transmission": ["manual", "auto", "cvt"],
    "body_style": ["sedan", "hatch", "suv", "coupe", "wagon"],
    "drive_wheels": ["fwd", "rwd", "4wd"],
    "aspiration": ["std", "turbo"],
    "doors": ["two", "four"],
    "color": ["white", "black", "silver", "red", "blue", "grey"],
    "region": ["north", "south", "east", "west"],
    "condition": ["new", "excellent", "good", "fair"],
    "seller_type": ["dealer", "private", "fleet"],
    "warranty": ["none", "partial", "full"],
}


class Frame:
    """A minimal column-major data frame (pandas stand-in).

    Numeric columns are float arrays; categorical columns are object
    arrays of strings.
    """

    def __init__(self, columns: Dict[str, np.ndarray]):
        if not columns:
            raise ValueError("a frame needs at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.columns: Dict[str, np.ndarray] = {
            name: np.asarray(values) for name, values in columns.items()}

    @property
    def n_rows(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> List[str]:
        return list(self.columns)

    @property
    def numeric_columns(self) -> List[str]:
        return [name for name, values in self.columns.items()
                if np.issubdtype(values.dtype, np.number)]

    @property
    def categorical_columns(self) -> List[str]:
        return [name for name, values in self.columns.items()
                if not np.issubdtype(values.dtype, np.number)]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.columns[name]

    def take(self, indices: np.ndarray) -> "Frame":
        """Row subset by integer indices."""
        return Frame({name: values[indices]
                      for name, values in self.columns.items()})

    def numeric_matrix(self) -> np.ndarray:
        """The numeric columns stacked as an (n_rows, n_numeric) matrix."""
        names = self.numeric_columns
        return np.column_stack([self.columns[name] for name in names])

    @property
    def payload_size(self) -> int:
        """Approximate serialized size (drives payload-limit behaviour)."""
        total = 0
        for values in self.columns.values():
            if np.issubdtype(values.dtype, np.number):
                total += values.size * 8
            else:
                total += sum(len(str(value)) + 2 for value in values)
        return total + 26 * 16

    def __repr__(self) -> str:
        return (f"Frame(rows={self.n_rows}, "
                f"numeric={len(self.numeric_columns)}, "
                f"categorical={len(self.categorical_columns)})")


@dataclass
class CarPricingDataset:
    """Features plus target prices, with a train/test view."""

    features: Frame
    prices: np.ndarray
    name: str = "car-pricing"

    @property
    def n_rows(self) -> int:
        return self.features.n_rows


def make_car_pricing_dataset(n_rows: int, seed: int = 0,
                             noise: float = 0.05) -> CarPricingDataset:
    """Generate ``n_rows`` of synthetic car listings with realistic signal.

    >>> dataset = make_car_pricing_dataset(200, seed=1)
    >>> dataset.features.n_rows
    200
    >>> len(dataset.features.numeric_columns)
    14
    >>> len(dataset.features.categorical_columns)
    12
    """
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    rng = np.random.default_rng(seed)
    columns: Dict[str, np.ndarray] = {}

    year = rng.integers(2000, 2021, n_rows).astype(float)
    mileage = rng.gamma(shape=2.0, scale=40_000, size=n_rows)
    engine = rng.choice([1000, 1400, 1600, 2000, 2500, 3000, 4000],
                        n_rows).astype(float)
    horsepower = engine * rng.uniform(0.05, 0.09, n_rows)
    columns["year"] = year
    columns["mileage_km"] = mileage
    columns["engine_cc"] = engine
    columns["horsepower"] = horsepower
    columns["torque_nm"] = horsepower * rng.uniform(1.2, 1.8, n_rows)
    columns["curb_weight_kg"] = rng.uniform(900, 2400, n_rows)
    columns["length_mm"] = rng.uniform(3500, 5200, n_rows)
    columns["width_mm"] = rng.uniform(1600, 2000, n_rows)
    columns["height_mm"] = rng.uniform(1350, 1900, n_rows)
    columns["wheelbase_mm"] = columns["length_mm"] * rng.uniform(
        0.55, 0.65, n_rows)
    columns["fuel_economy_l100km"] = rng.uniform(3.5, 15.0, n_rows)
    columns["top_speed_kmh"] = 140 + horsepower * rng.uniform(
        0.4, 0.6, n_rows)
    columns["acceleration_s"] = np.clip(
        16.0 - horsepower / 25.0 + rng.normal(0, 0.8, n_rows), 2.5, 20.0)
    columns["num_owners"] = rng.integers(1, 6, n_rows).astype(float)

    for name, levels in CATEGORICAL_FEATURES.items():
        columns[name] = rng.choice(levels, n_rows).astype(object)

    # Ground-truth pricing with categorical effects and interactions.
    make_premium = {"bmw": 1.45, "merc": 1.5, "audi": 1.35, "toyo": 1.0,
                    "hond": 1.0, "ford": 0.92, "kia": 0.85, "fiat": 0.8}
    fuel_premium = {"gas": 1.0, "diesel": 1.02, "hybrid": 1.12,
                    "electric": 1.3}
    condition_factor = {"new": 1.3, "excellent": 1.1, "good": 0.95,
                        "fair": 0.75}

    # Deliberately nonlinear: exponential depreciation with mileage and
    # age, saturating horsepower value, and a premium-make × condition
    # interaction — the structure tree ensembles capture and a linear
    # model on one-hot features cannot.
    make_factor = np.vectorize(make_premium.get)(columns["make"]).astype(
        float)
    condition_mult = np.vectorize(condition_factor.get)(
        columns["condition"]).astype(float)
    age = 2021 - year
    base = (9_000
            + 60_000 * np.exp(-mileage / 90_000.0)
            + 30_000 * (1.0 - np.exp(-horsepower / 140.0))
            + (columns["fuel_economy_l100km"].max()
               - columns["fuel_economy_l100km"]) * 250)
    base *= np.exp(-age / 9.0)
    multiplier = (
        make_factor
        * np.vectorize(fuel_premium.get)(columns["fuel_type"]).astype(float)
        * condition_mult)
    # Premium makes in top condition command an extra nonlinear bump.
    multiplier *= 1.0 + 0.25 * (make_factor > 1.3) * (condition_mult > 1.0)
    prices = base * multiplier
    prices *= 1.0 + rng.normal(0.0, noise, n_rows)
    prices = np.clip(prices, 500.0, None)

    return CarPricingDataset(features=Frame(columns), prices=prices,
                             name=f"car-pricing-{n_rows}")


def train_test_split(dataset: CarPricingDataset, test_fraction: float = 0.2,
                     seed: int = 0) -> Tuple[CarPricingDataset,
                                             CarPricingDataset]:
    """Shuffle and split into (train, test) datasets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(dataset.n_rows)
    n_test = max(1, int(round(dataset.n_rows * test_fraction)))
    test_idx, train_idx = indices[:n_test], indices[n_test:]
    train = CarPricingDataset(
        features=dataset.features.take(train_idx),
        prices=dataset.prices[train_idx], name=f"{dataset.name}-train")
    test = CarPricingDataset(
        features=dataset.features.take(test_idx),
        prices=dataset.prices[test_idx], name=f"{dataset.name}-test")
    return train, test
