"""Model selection: the paper's parallel search for the best-fit model.

§III-A Figure 3: "several parallel workflows, each focusing on a
different algorithm, and parameter space... The last step is to select
the best fit, which aggregates the results of all parallel model training
workflows, and finds the most fitted model."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.workloads.ml.models import (
    KNeighborsRegressor,
    LassoRegressor,
    RandomForestRegressor,
    mean_squared_error,
)


@dataclass
class ModelCandidate:
    """One (algorithm, hyper-parameters) point in the search space."""

    name: str
    algorithm: str               # 'random_forest' | 'kneighbors' | 'lasso'
    params: Dict[str, Any] = field(default_factory=dict)
    #: the paper trains large models inside a sub-orchestrator and small
    #: ones inside an entity — this flag drives that split
    heavy: bool = False

    def build(self):
        """Instantiate the estimator."""
        if self.algorithm == "random_forest":
            return RandomForestRegressor(**self.params)
        if self.algorithm == "kneighbors":
            return KNeighborsRegressor(**self.params)
        if self.algorithm == "lasso":
            return LassoRegressor(**self.params)
        raise ValueError(f"unknown algorithm: {self.algorithm!r}")


@dataclass
class CandidateResult:
    """A trained candidate plus its validation error."""

    candidate: ModelCandidate
    model: Any
    error: float

    @property
    def payload_size(self) -> int:
        return getattr(self.model, "payload_size", 256)


def default_candidates(seed: int = 0) -> List[ModelCandidate]:
    """The default search space — the paper's three algorithms (§IV-A):
    "searching through RandomForestRegressor, KNeighborsRegressor, and
    Lasso to find the best fit model"."""
    return [
        ModelCandidate("rf-deep", "random_forest",
                       {"n_estimators": 10, "max_depth": 14,
                        "max_features": 20, "seed": seed}, heavy=True),
        ModelCandidate("knn-5", "kneighbors", {"n_neighbors": 5}),
        ModelCandidate("lasso-0.1", "lasso", {"alpha": 0.1}),
    ]


def train_candidate(candidate: ModelCandidate, train_features: np.ndarray,
                    train_targets: np.ndarray,
                    validation_features: np.ndarray,
                    validation_targets: np.ndarray) -> CandidateResult:
    """Fit one candidate and score it on the validation split."""
    model = candidate.build()
    model.fit(train_features, train_targets)
    predictions = model.predict(validation_features)
    error = mean_squared_error(validation_targets, predictions)
    return CandidateResult(candidate=candidate, model=model, error=error)


def select_best(results: Sequence[CandidateResult]) -> CandidateResult:
    """The collector's job: keep the candidate with the lowest error.

    Mirrors the paper's collector entity, whose "state ... is updated once
    a new model is found with less error reported than the current model".
    """
    if not results:
        raise ValueError("no candidate results to select from")
    best = results[0]
    for result in results[1:]:
        if result.error < best.error:
            best = result
    return best


class BestFitCollector:
    """Incremental best-model state — the durable entity's behaviour."""

    def __init__(self):
        self.best: Optional[CandidateResult] = None
        self.reports = 0

    def report(self, result: CandidateResult) -> bool:
        """Record one result; returns True when it became the new best."""
        self.reports += 1
        if self.best is None or result.error < self.best.error:
            self.best = result
            return True
        return False
