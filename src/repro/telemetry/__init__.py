"""Telemetry: spans, counters and event logs.

Stands in for AWS CloudWatch and Azure Application Insights — the paper's
log-collection layer (§IV-A).  Platform runtimes emit :class:`Span` records
for every interesting interval (cold start, queue wait, execution,
orchestrator replay, state transition); the evaluation harness aggregates
them into the latency breakdowns, CDFs and percentile charts the paper
reports.
"""

from repro.telemetry.spans import Span, SpanKind, Telemetry
from repro.telemetry.timeline import Timeline, TimelineEvent
from repro.telemetry.metrics import (
    MetricSeries,
    MetricsRegistry,
    PeriodStats,
    series_from_spans,
)

__all__ = [
    "MetricSeries",
    "MetricsRegistry",
    "PeriodStats",
    "Span",
    "SpanKind",
    "Telemetry",
    "Timeline",
    "TimelineEvent",
    "series_from_spans",
]
