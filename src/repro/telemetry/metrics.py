"""CloudWatch-style metric timeseries: per-period aggregation.

Both providers expose monitoring as *period-aggregated statistics*
(count/sum/min/max/avg/percentiles per minute).  This module provides the
same view over simulated measurements, so examples and benchmarks can
plot, say, per-minute invocation counts or p99 scheduling delay over the
course of a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PeriodStats:
    """Aggregated statistics for one time bucket."""

    period_start: float
    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def average(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricSeries:
    """Timestamped samples of one metric."""

    def __init__(self, name: str, clock: Callable[[], float]):
        self.name = name
        self._clock = clock
        self.samples: List[Tuple[float, float]] = []

    def record(self, value: float) -> None:
        """Record ``value`` at the current simulated time."""
        self.samples.append((self._clock(), float(value)))

    def record_at(self, time: float, value: float) -> None:
        """Record a sample at an explicit timestamp."""
        self.samples.append((float(time), float(value)))

    def __len__(self) -> int:
        return len(self.samples)

    def aggregate(self, period_s: float,
                  since: float = 0.0,
                  until: Optional[float] = None) -> List[PeriodStats]:
        """Per-period statistics over ``[since, until)``.

        Empty periods between populated ones are included with zero
        counts (monitoring dashboards show gaps as zeros, not holes).
        """
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        window = [(time, value) for time, value in self.samples
                  if time >= since and (until is None or time < until)]
        if not window:
            return []
        buckets: Dict[int, List[float]] = {}
        for time, value in window:
            buckets.setdefault(int((time - since) // period_s),
                               []).append(value)
        stats = []
        for index in range(max(buckets) + 1):
            values = buckets.get(index, [])
            start = since + index * period_s
            if values:
                stats.append(PeriodStats(
                    period_start=start, count=len(values),
                    total=float(sum(values)),
                    minimum=float(min(values)),
                    maximum=float(max(values))))
            else:
                stats.append(PeriodStats(period_start=start, count=0,
                                         total=0.0, minimum=0.0,
                                         maximum=0.0))
        return stats

    def percentile_per_period(self, period_s: float, q: float,
                              since: float = 0.0,
                              until: Optional[float] = None
                              ) -> List[Tuple[float, float]]:
        """(period_start, q-th percentile) for populated periods."""
        if not 0 <= q <= 100:
            raise ValueError("q must lie in [0, 100]")
        window = [(time, value) for time, value in self.samples
                  if time >= since and (until is None or time < until)]
        buckets: Dict[int, List[float]] = {}
        for time, value in window:
            buckets.setdefault(int((time - since) // period_s),
                               []).append(value)
        return [(since + index * period_s,
                 float(np.percentile(values, q)))
                for index, values in sorted(buckets.items())]


class MetricsRegistry:
    """A named family of metric series sharing one clock."""

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self._series: Dict[str, MetricSeries] = {}

    def series(self, name: str) -> MetricSeries:
        """The series for ``name``, created on first use."""
        if name not in self._series:
            self._series[name] = MetricSeries(name, self._clock)
        return self._series[name]

    def names(self) -> List[str]:
        return sorted(self._series)


def series_from_spans(telemetry, kind: str, clock: Callable[[], float],
                      name: Optional[str] = None) -> MetricSeries:
    """Build a duration series from matching telemetry spans.

    Each closed span contributes one sample at its start time whose value
    is its duration — e.g. per-minute p99 of worker scheduling delay.
    """
    series = MetricSeries(name or kind, clock)
    for span in telemetry.find(kind=kind, name=name):
        series.record_at(span.start, span.duration)
    return series
