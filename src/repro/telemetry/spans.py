"""Span collection for simulated platform activity."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional


class SpanKind:
    """Well-known span kinds emitted by the platform simulations."""

    COLD_START = "cold_start"        # container provisioning before first run
    QUEUE_WAIT = "queue_wait"        # time spent waiting in a dispatch queue
    SCHEDULING = "scheduling"        # trigger-to-start delay for a worker
    EXECUTION = "execution"          # billable function execution
    REPLAY = "replay"                # orchestrator replay execution
    TRANSITION = "transition"        # state-machine transition
    STORAGE = "storage"              # remote storage access from a handler
    WORKFLOW = "workflow"            # end-to-end workflow interval
    ENTITY_OP = "entity_op"          # durable entity operation


@dataclass
class Span:
    """A named interval of simulated time with attributes."""

    span_id: int
    name: str
    kind: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length; raises if the span is still open."""
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:
        end = f"{self.end:.6g}" if self.end is not None else "open"
        return (f"Span({self.name!r}, kind={self.kind}, "
                f"start={self.start:.6g}, end={end})")


class Telemetry:
    """Collects spans against a simulated clock.

    >>> from repro.sim import Environment
    >>> env = Environment()
    >>> telemetry = Telemetry(clock=lambda: env.now)
    >>> span = telemetry.start_span('invoke', SpanKind.EXECUTION)
    >>> _ = telemetry.end_span(span)
    >>> span.duration
    0.0
    """

    _ids = itertools.count(1)

    def __init__(self, clock: Callable[[], float], enabled: bool = True):
        self._clock = clock
        self.enabled = enabled
        self.spans: List[Span] = []

    def start_span(self, name: str, kind: str,
                   parent: Optional[Span] = None,
                   **attributes: Any) -> Span:
        """Open a span at the current simulated time.

        With collection disabled (``enabled=False``) the span object is
        still produced — platform code annotates and closes it — but it
        is not retained, so queries see nothing.
        """
        span = Span(
            span_id=next(self._ids), name=name, kind=kind,
            start=self._clock(),
            parent_id=parent.span_id if parent else None,
            attributes=dict(attributes))
        if self.enabled:
            self.spans.append(span)
        return span

    def end_span(self, span: Span, **attributes: Any) -> Span:
        """Close a span at the current simulated time."""
        if span.end is not None:
            raise ValueError(f"span {span.name!r} already closed")
        span.end = self._clock()
        span.attributes.update(attributes)
        return span

    def record(self, name: str, kind: str, start: float, end: float,
               parent: Optional[Span] = None, **attributes: Any) -> Span:
        """Record an already-completed interval."""
        if end < start:
            raise ValueError(f"span ends before it starts: {start} > {end}")
        span = Span(
            span_id=next(self._ids), name=name, kind=kind, start=start,
            end=end, parent_id=parent.span_id if parent else None,
            attributes=dict(attributes))
        if self.enabled:
            self.spans.append(span)
        return span

    # -- queries ---------------------------------------------------------------

    def find(self, kind: Optional[str] = None, name: Optional[str] = None,
             **attributes: Any) -> List[Span]:
        """All closed spans matching the filters."""
        matches = []
        for span in self.spans:
            if not span.closed:
                continue
            if kind is not None and span.kind != kind:
                continue
            if name is not None and span.name != name:
                continue
            if any(span.attributes.get(key) != value
                   for key, value in attributes.items()):
                continue
            matches.append(span)
        return matches

    def durations(self, kind: Optional[str] = None,
                  name: Optional[str] = None, **attributes: Any) -> List[float]:
        """Durations of all matching closed spans."""
        return [span.duration
                for span in self.find(kind=kind, name=name, **attributes)]

    def total_time(self, kind: Optional[str] = None,
                   name: Optional[str] = None, **attributes: Any) -> float:
        """Summed duration of matching spans (e.g. total queue time)."""
        return sum(self.durations(kind=kind, name=name, **attributes))

    def children_of(self, parent: Span) -> List[Span]:
        """Direct children of ``parent``."""
        return [span for span in self.spans if span.parent_id == parent.span_id]

    def merge(self, others: Iterable["Telemetry"]) -> "Telemetry":
        """A new collector holding this one's spans plus others'."""
        merged = Telemetry(self._clock)
        merged.spans = list(self.spans)
        for other in others:
            merged.spans.extend(other.spans)
        merged.spans.sort(key=lambda span: span.start)
        return merged

    def reset(self) -> None:
        """Drop all spans (between experiment iterations)."""
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)
