"""Point-in-time event log (the CloudWatch-Logs-style complement to spans)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TimelineEvent:
    """One timestamped event with a category and free-form details."""

    time: float
    category: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)


class Timeline:
    """An append-only, time-ordered event log."""

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self.events: List[TimelineEvent] = []

    def log(self, category: str, message: str, **details: Any) -> TimelineEvent:
        """Record an event at the current simulated time."""
        event = TimelineEvent(
            time=self._clock(), category=category, message=message,
            details=dict(details))
        self.events.append(event)
        return event

    def filter(self, category: Optional[str] = None,
               since: float = float("-inf"),
               until: float = float("inf")) -> List[TimelineEvent]:
        """Events matching a category within ``[since, until)``."""
        return [event for event in self.events
                if (category is None or event.category == category)
                and since <= event.time < until]

    def last(self, category: Optional[str] = None) -> Optional[TimelineEvent]:
        """Most recent matching event, or ``None``."""
        matching = self.filter(category=category)
        return matching[-1] if matching else None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
