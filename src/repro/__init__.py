"""Stateful serverless workbench.

A simulation-based reproduction of *Cross-Platform Performance Evaluation
of Stateful Serverless Workflows* (Shahidi, Gunasekaran, Kandemir —
IISWC 2021), packaged as a library for studying the cost/performance
behaviour of stateful serverless platforms.

Top-level layout:

* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.storage` — blob/queue/table substrates with metering
* :mod:`repro.aws` — Lambda + Step Functions (ASL interpreter)
* :mod:`repro.azure` — Functions + Durable orchestrators/entities
* :mod:`repro.workloads` — the ML and video case studies
* :mod:`repro.core` — deployments, campaigns, costs, reports, workflow IR
* :mod:`repro.cli` — ``python -m repro`` experiment runner

Start with :class:`repro.core.Testbed` or ``examples/quickstart.py``.
"""

__version__ = "1.0.0"
