"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro latency   --scale small --iterations 10
    python -m repro inference --scale large
    python -m repro coldstart --days 2
    python -m repro video     --workers 1,5,20,80
    python -m repro cost      --runs-per-month 30
    python -m repro paper     # condensed everything

Each subcommand builds fresh testbeds, runs the campaign on the simulated
clock and prints the corresponding table/figure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import (
    ColdStartCampaign,
    ExperimentRunner,
    Testbed,
    build_ml_inference_deployments,
    build_ml_training_deployments,
    build_video_deployments,
    cost_report,
)
from repro.core.costs import monthly_projection
from repro.core.persistence import save_results
from repro.core.metrics import percentile
from repro.core.report import render_bars, render_table

ML_VARIANTS = ["AWS-Lambda", "AWS-Step", "Az-Func", "Az-Queue", "Az-Dorch",
               "Az-Dent"]


def _variants(value: str) -> List[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    unknown = [name for name in names if name not in ML_VARIANTS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown variants: {unknown}; choose from {ML_VARIANTS}")
    return names


def _worker_list(value: str) -> List[int]:
    try:
        workers = [int(item) for item in value.split(",") if item.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    if not workers or any(count < 1 for count in workers):
        raise argparse.ArgumentTypeError("worker counts must be positive")
    return workers


def cmd_latency(args: argparse.Namespace) -> int:
    runner = ExperimentRunner()
    rows = []
    campaigns = []
    reports = []
    for name in args.variants:
        testbed = Testbed(seed=args.seed)
        deployment = build_ml_training_deployments(
            testbed, args.scale)[name]
        campaign = runner.run_campaign(deployment,
                                       iterations=args.iterations, warmup=1)
        campaigns.append(campaign)
        reports.append(cost_report(deployment,
                                   per_runs=args.iterations + 1))
        stats = campaign.stats()
        rows.append([name, stats.median, stats.p95, stats.p99])
    print(render_table(["variant", "median s", "p95 s", "p99 s"], rows,
                       title=f"ML training latency ({args.scale}, "
                             f"{args.iterations} iterations)"))
    if getattr(args, "save", None):
        path = save_results(
            args.save, campaigns=campaigns, cost_reports=reports,
            metadata={"command": "latency", "scale": args.scale,
                      "iterations": args.iterations, "seed": args.seed})
        print(f"\nresults saved to {path}")
    return 0


def cmd_inference(args: argparse.Namespace) -> int:
    runner = ExperimentRunner()
    rows = []
    for name in ["AWS-Step", "Az-Dorch", "Az-Dent"]:
        testbed = Testbed(seed=args.seed)
        deployment = build_ml_inference_deployments(
            testbed, args.scale)[name]
        campaign = runner.run_campaign(deployment,
                                       iterations=args.iterations, warmup=1)
        rows.append([name, campaign.stats().median, campaign.stats().p99])
    print(render_table(["variant", "median s", "p99 s"], rows,
                       title=f"ML inference latency ({args.scale})"))
    return 0


def cmd_coldstart(args: argparse.Namespace) -> int:
    campaign = ColdStartCampaign(interval_s=3600.0, days=args.days)
    data = {}
    for name in ["Az-Queue", "AWS-Step", "Az-Dorch", "Az-Dent"]:
        testbed = Testbed(seed=args.seed)
        deployment = build_ml_training_deployments(testbed, "small")[name]
        delays = campaign.run(deployment).cold_start_delays
        data[name] = percentile(delays, 50)
    print(render_bars(data, title=f"Cold start delay, median of "
                                  f"{campaign.request_count} hourly "
                                  "requests", unit="s"))
    return 0


def cmd_video(args: argparse.Namespace) -> int:
    rows = []
    for workers in args.workers:
        row = [workers]
        for name in ("AWS-Step", "Az-Dorch"):
            testbed = Testbed(seed=args.seed)
            deployment = build_video_deployments(
                testbed, n_workers=workers)[name]
            deployment.deploy()
            run = testbed.run(deployment.invoke(n_workers=workers))
            row.append(run.latency)
        rows.append(row)
    print(render_table(["workers", "AWS-Step (s)", "Az-Dorch (s)"], rows,
                       title="Video processing latency vs workers"))
    return 0


def cmd_cost(args: argparse.Namespace) -> int:
    rows = []
    for name in ("AWS-Step", "Az-Dorch"):
        testbed = Testbed(seed=args.seed)
        deployment = build_video_deployments(
            testbed, n_workers=args.workers)[name]
        deployment.deploy()
        for _ in range(args.measured_runs):
            testbed.run(deployment.invoke())
            testbed.advance(30.0)
        per_run = cost_report(deployment, per_runs=args.measured_runs)
        idle = 0
        if name == "Az-Dorch":
            before = len(testbed.azure.meter)
            testbed.advance(3600.0)
            idle = (len(testbed.azure.meter) - before) * 24 * 30
        projected = monthly_projection(per_run, args.runs_per_month,
                                       idle_transactions_per_month=idle)
        rows.append([name, projected.compute_cost,
                     projected.transaction_cost, projected.total,
                     f"{projected.transaction_share:.0%}"])
    print(render_table(
        ["variant", "compute $/mo", "transactions $/mo", "total $/mo",
         "tx share"],
        rows, title=f"Monthly video cost, {args.workers} workers, "
                    f"{args.runs_per_month} runs/month"))
    return 0


def cmd_takeaways(args: argparse.Namespace) -> int:
    from repro.core.takeaways import (
        evaluate_ml_takeaways,
        evaluate_video_takeaways,
        render_takeaways,
    )
    takeaways = (evaluate_ml_takeaways(iterations=args.iterations,
                                       seed=args.seed)
                 + evaluate_video_takeaways(seed=args.seed))
    print(render_takeaways(takeaways))
    return 0 if all(takeaway.holds for takeaway in takeaways) else 1


def cmd_paper(args: argparse.Namespace) -> int:
    print("Condensed paper reproduction "
          "(full version: pytest benchmarks/ --benchmark-only -s)\n")
    args.scale = "small"
    args.iterations = 8
    args.variants = ML_VARIANTS
    cmd_latency(args)
    print()
    args.workers = [1, 20, 80]
    cmd_video(args)
    print()
    args.days = 1.0
    cmd_coldstart(args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stateful serverless workbench — IISWC'21 reproduction")
    parser.add_argument("--seed", type=int, default=0,
                        help="testbed random seed")
    parser.add_argument("--save", metavar="PATH", default=None,
                        help="write campaign results to a JSON file "
                             "(latency command)")
    commands = parser.add_subparsers(dest="command", required=True)

    latency = commands.add_parser(
        "latency", help="ML training latency across variants (Fig 6)")
    latency.add_argument("--scale", choices=["small", "large"],
                         default="small")
    latency.add_argument("--iterations", type=int, default=10)
    latency.add_argument("--variants", type=_variants, default=ML_VARIANTS)
    latency.set_defaults(func=cmd_latency)

    inference = commands.add_parser(
        "inference", help="ML inference latency (Fig 9)")
    inference.add_argument("--scale", choices=["small", "large"],
                           default="small")
    inference.add_argument("--iterations", type=int, default=10)
    inference.set_defaults(func=cmd_inference)

    coldstart = commands.add_parser(
        "coldstart", help="hourly cold-start campaign (Fig 10)")
    coldstart.add_argument("--days", type=float, default=4.0)
    coldstart.set_defaults(func=cmd_coldstart)

    video = commands.add_parser(
        "video", help="video fan-out scaling (Fig 12)")
    video.add_argument("--workers", type=_worker_list,
                       default=[1, 5, 10, 20, 40, 80])
    video.set_defaults(func=cmd_video)

    cost = commands.add_parser(
        "cost", help="monthly video cost projection (Fig 15)")
    cost.add_argument("--workers", type=int, default=20)
    cost.add_argument("--runs-per-month", type=int, default=30)
    cost.add_argument("--measured-runs", type=int, default=4)
    cost.set_defaults(func=cmd_cost)

    takeaways = commands.add_parser(
        "takeaways", help="re-derive the paper's key-takeaway bullets")
    takeaways.add_argument("--iterations", type=int, default=8)
    takeaways.set_defaults(func=cmd_takeaways)

    paper = commands.add_parser(
        "paper", help="condensed run of the main experiments")
    paper.set_defaults(func=cmd_paper)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
