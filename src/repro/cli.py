"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro latency   --scale small --iterations 10 --workers 4
    python -m repro inference --scale large
    python -m repro coldstart --days 2
    python -m repro video     --workers 1,5,20,80 -j 4
    python -m repro cost      --runs-per-month 30
    python -m repro paper     # condensed everything

Each subcommand builds fresh testbeds, runs the campaign on the simulated
clock and prints the corresponding table/figure.  Campaign commands
accept ``--platforms``/``-p`` (a comma list of registered backends, e.g.
``-p aws,gcp``) to restrict which platforms' variants run; the default
is every registered backend.

Campaigns fan out across ``--workers``/``-j`` worker processes and land
in an on-disk result cache (``~/.cache/repro/campaigns`` or
``$REPRO_CACHE_DIR``), so re-running a command reuses completed
campaigns.  ``--no-cache`` bypasses the cache; ``repro cache --clear``
drops it.  On ``video``/``cost``, ``--workers`` already means the fan-out
width from the paper, so the worker-process count is spelled ``-j``
there.

Long sweeps can run crash-safe: ``--journal DIR`` checkpoints every
completed campaign to an append-only sweep journal the moment it
finishes, ``--spec-timeout``/``--max-worker-restarts`` bound stuck and
crashing workers, and a killed sweep is finished later with
``repro resume DIR`` (or the original command plus ``--resume``) —
re-running only the missing specs, bit-identical to an uninterrupted
run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.cache import ResultCache
from repro.core.checkpoint import JournalError, SweepJournal
from repro.core.costs import monthly_projection
from repro.core.parallel import CampaignSpec, ParallelRunner
from repro.core.persistence import save_results
from repro.core.metrics import percentile
from repro.core.report import render_bars, render_table
from repro.core.supervise import SupervisedRunner
from repro.platforms.backend import backend_names
from repro.platforms.faults import FaultPlan

ML_VARIANTS = ["AWS-Lambda", "AWS-Step", "Az-Func", "Az-Queue", "Az-Dorch",
               "Az-Dent", "GCP-Func", "GCP-Flows"]

#: Which registered backend each deployment variant runs on.
VARIANT_PLATFORMS = {
    "AWS-Lambda": "aws", "AWS-Step": "aws",
    "Az-Func": "azure", "Az-Queue": "azure",
    "Az-Dorch": "azure", "Az-Dent": "azure",
    "GCP-Func": "gcp", "GCP-Flows": "gcp",
}


def _variants(value: str) -> List[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    unknown = [name for name in names if name not in ML_VARIANTS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown variants: {unknown}; choose from {ML_VARIANTS}")
    return names


def _platforms(value: str) -> List[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    known = list(backend_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown platforms: {unknown}; choose from {known}")
    return names


def _selected_platforms(args: argparse.Namespace) -> List[str]:
    """The ``--platforms`` selection, defaulting to every backend."""
    return getattr(args, "platforms", None) or list(backend_names())


def _filter_variants(names, platforms: List[str]) -> List[str]:
    """The variants from ``names`` whose platform is selected."""
    kept = [name for name in names
            if VARIANT_PLATFORMS.get(name) in platforms]
    if not kept:
        raise SystemExit(
            f"no variants left after --platforms {','.join(platforms)}; "
            f"the requested variants were {list(names)}")
    return kept


def _positive_int(value: str) -> int:
    try:
        count = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    if count < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return count


def _probability(value: str) -> float:
    try:
        probability = float(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    if not 0.0 <= probability <= 1.0:
        raise argparse.ArgumentTypeError("must lie in [0, 1]")
    return probability


def _probability_list(value: str) -> List[float]:
    return [_probability(item) for item in value.split(",") if item.strip()]


def _rate_list(value: str) -> List[float]:
    try:
        rates = [float(item) for item in value.split(",") if item.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    if not rates or any(rate <= 0 for rate in rates):
        raise argparse.ArgumentTypeError("arrival rates must be positive")
    return rates


def _worker_list(value: str) -> List[int]:
    try:
        workers = [int(item) for item in value.split(",") if item.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    if not workers or any(count < 1 for count in workers):
        raise argparse.ArgumentTypeError("worker counts must be positive")
    return workers


def _nonnegative_int(value: str) -> int:
    try:
        count = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    if count < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return count


def _positive_float(value: str) -> float:
    try:
        number = float(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    if number <= 0:
        raise argparse.ArgumentTypeError("must be positive")
    return number


def _cache(args: argparse.Namespace) -> Optional[ResultCache]:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(getattr(args, "cache_dir", None))


def _runner(args: argparse.Namespace) -> ParallelRunner:
    """The campaign runner the parsed global options ask for."""
    return ParallelRunner(workers=getattr(args, "jobs", 1),
                          cache=_cache(args))


def _check_resume_flags(args: argparse.Namespace) -> None:
    """``--resume`` without ``--journal`` is an error, not a no-op.

    Silently ignoring ``--resume`` would re-run the whole sweep
    uncheckpointed; demand the journal it is meant to reuse.
    """
    if getattr(args, "resume", False) and \
            getattr(args, "journal", None) is None:
        raise SystemExit(
            "repro: --resume requires --journal DIR (the journal to "
            "reuse); or finish the sweep with `repro resume DIR`")


def _interrupted_exit(journal) -> None:
    """The shared SIGINT contract: resume hint on stderr, exit 130."""
    if journal is not None:
        status = ""
        try:
            status = f" ({SweepJournal(journal).progress()})"
        except JournalError:
            pass
        print(f"\ninterrupted; completed campaigns are "
              f"journaled{status}", file=sys.stderr)
        print(f"finish the sweep with: repro resume {journal}",
              file=sys.stderr)
    else:
        print("\ninterrupted", file=sys.stderr)
    raise SystemExit(130) from None


def _run_specs(args: argparse.Namespace, specs) -> list:
    """Run a command's specs, supervised when the new flags ask for it.

    Without ``--journal``/``--spec-timeout``/``--max-worker-restarts``
    this is exactly the old ``ParallelRunner`` path.  With any of them,
    a :class:`SupervisedRunner` executes the sweep: completed outcomes
    are journaled immediately, failures are reported per spec (exit 1)
    instead of discarding finished work, and SIGINT/SIGTERM leave a
    resumable journal behind (exit 130).
    """
    journal = getattr(args, "journal", None)
    timeout = getattr(args, "spec_timeout", None)
    restarts = getattr(args, "max_worker_restarts", None)
    _check_resume_flags(args)
    if journal is None and timeout is None and restarts is None:
        return _runner(args).run(specs)

    runner = SupervisedRunner(
        workers=getattr(args, "jobs", 1), cache=_cache(args),
        journal=journal, spec_timeout_s=timeout,
        max_restarts=restarts if restarts is not None else 2)
    try:
        result = runner.run(specs, argv=getattr(args, "argv", None),
                            resume=getattr(args, "resume", False))
    except JournalError as error:
        raise SystemExit(f"repro: {error}") from error
    except KeyboardInterrupt:
        _interrupted_exit(journal)
    if not result.ok:
        print(f"{len(result.failures)} of {len(specs)} campaigns "
              f"failed:", file=sys.stderr)
        for failure in result.failures:
            print(f"  {failure}", file=sys.stderr)
        if journal is not None:
            print(f"completed campaigns are journaled; retry with: "
                  f"repro resume {journal}", file=sys.stderr)
        raise SystemExit(1)
    return result.outcomes


def cmd_latency(args: argparse.Namespace) -> int:
    variants = _filter_variants(args.variants, _selected_platforms(args))
    specs = [CampaignSpec(deployment=name, workload="ml-training",
                          scale=args.scale, iterations=args.iterations,
                          warmup=1, seed=args.seed)
             for name in variants]
    outcomes = _run_specs(args, specs)
    rows = []
    for name, outcome in zip(variants, outcomes):
        stats = outcome.campaign.stats()
        rows.append([name, stats.median, stats.p95, stats.p99])
    print(render_table(["variant", "median s", "p95 s", "p99 s"], rows,
                       title=f"ML training latency ({args.scale}, "
                             f"{args.iterations} iterations)"))
    if getattr(args, "save", None):
        path = save_results(
            args.save,
            campaigns=[outcome.campaign for outcome in outcomes],
            cost_reports=[outcome.cost for outcome in outcomes],
            metadata={"command": "latency", "scale": args.scale,
                      "iterations": args.iterations, "seed": args.seed})
        print(f"\nresults saved to {path}")
    return 0


def cmd_inference(args: argparse.Namespace) -> int:
    variants = _filter_variants(["AWS-Step", "Az-Dorch", "Az-Dent",
                                 "GCP-Flows"], _selected_platforms(args))
    specs = [CampaignSpec(deployment=name, workload="ml-inference",
                          scale=args.scale, iterations=args.iterations,
                          warmup=1, seed=args.seed)
             for name in variants]
    outcomes = _run_specs(args, specs)
    rows = [[name, outcome.campaign.stats().median,
             outcome.campaign.stats().p99]
            for name, outcome in zip(variants, outcomes)]
    print(render_table(["variant", "median s", "p99 s"], rows,
                       title=f"ML inference latency ({args.scale})"))
    return 0


def cmd_coldstart(args: argparse.Namespace) -> int:
    variants = _filter_variants(["Az-Queue", "AWS-Step", "Az-Dorch",
                                 "Az-Dent", "GCP-Flows"],
                                _selected_platforms(args))
    specs = [CampaignSpec(deployment=name, workload="ml-training",
                          scale="small", campaign="coldstart",
                          interval_s=3600.0, days=args.days, seed=args.seed)
             for name in variants]
    outcomes = _run_specs(args, specs)
    data = {name: percentile(outcome.campaign.cold_start_delays, 50)
            for name, outcome in zip(variants, outcomes)}
    request_count = len(outcomes[0].campaign.runs)
    print(render_bars(data, title=f"Cold start delay, median of "
                                  f"{request_count} hourly "
                                  "requests", unit="s"))
    return 0


def cmd_video(args: argparse.Namespace) -> int:
    variants = _filter_variants(["AWS-Step", "Az-Dorch", "GCP-Flows"],
                                _selected_platforms(args))
    specs = []
    for workers in args.workers:
        for name in variants:
            specs.append(CampaignSpec(
                deployment=name, workload="video", fanout=workers,
                campaign="latency", iterations=1, warmup=0,
                think_time_s=0.0, settle_time_s=0.0, seed=args.seed,
                invoke_kwargs={"n_workers": workers}))
    outcomes = iter(_run_specs(args, specs))
    rows = []
    for workers in args.workers:
        row = [workers]
        for _ in variants:
            row.append(next(outcomes).campaign.latencies[0])
        rows.append(row)
    print(render_table(["workers"] + [f"{name} (s)" for name in variants],
                       rows, title="Video processing latency vs workers"))
    return 0


def cmd_cost(args: argparse.Namespace) -> int:
    variants = _filter_variants(["AWS-Step", "Az-Dorch", "GCP-Flows"],
                                _selected_platforms(args))
    specs = [CampaignSpec(
        deployment=name, workload="video", fanout=args.workers,
        campaign="latency", iterations=args.measured_runs, warmup=0,
        think_time_s=30.0, settle_time_s=0.0, seed=args.seed,
        idle_window_s=3600.0 if name == "Az-Dorch" else 0.0)
        for name in variants]
    outcomes = _run_specs(args, specs)
    rows = []
    for name, outcome in zip(variants, outcomes):
        idle = outcome.idle_transactions * 24 * 30
        projected = monthly_projection(outcome.cost, args.runs_per_month,
                                       idle_transactions_per_month=idle)
        rows.append([name, projected.compute_cost,
                     projected.transaction_cost, projected.total,
                     f"{projected.transaction_share:.0%}"])
    print(render_table(
        ["variant", "compute $/mo", "transactions $/mo", "total $/mo",
         "tx share"],
        rows, title=f"Monthly video cost, {args.workers} workers, "
                    f"{args.runs_per_month} runs/month"))
    return 0


def cmd_reliability(args: argparse.Namespace) -> int:
    """Crash-probability sweep: the per-platform price of reliability."""
    audit = True if getattr(args, "audit", False) else None
    variants = _filter_variants(args.variants, _selected_platforms(args))
    probabilities = args.sweep if args.sweep else [args.crash_prob]
    specs = []
    for probability in probabilities:
        plan = FaultPlan(crash_probability=probability,
                         error_probability=args.error_prob,
                         straggler_probability=args.straggler_prob,
                         retry_max_attempts=args.retries)
        for name in variants:
            specs.append(CampaignSpec(
                deployment=name, workload="ml-training", scale=args.scale,
                campaign="reliability", iterations=args.iterations,
                warmup=1, seed=args.seed, fault_plan=plan.to_items(),
                audit=audit))
    outcomes = iter(_run_specs(args, specs))

    rows = []
    summaries = {}
    for probability in probabilities:
        for name in variants:
            summary = next(outcomes).reliability
            summaries[(probability, name)] = summary
            rows.append([
                name, probability, f"{summary.success_rate:.0%}",
                summary.retries, round(summary.wasted_gb_s, 3),
                round(summary.cost_amplification, 3),
                round(summary.tail_inflation, 3)])
    print(render_table(
        ["variant", "crash p", "success", "retries", "wasted GB-s",
         "cost amp", "tail infl"],
        rows, title=f"Price of reliability ({args.scale}, "
                    f"{args.iterations} iterations, "
                    f"{args.retries} attempts)"))

    by_platform = _group_by_platform(summaries.values())
    if by_platform:
        print("\nTakeaways (per platform):")
        amplifications = {}
        for platform, group in by_platform.items():
            amplification = max(s.cost_amplification for s in group)
            amplifications[platform] = amplification
            worst_ok = min(s.success_rate for s in group)
            wasted = sum(s.wasted_gb_s for s in group)
            print(f"- {platform}: worst-case cost amplification "
                  f"{amplification:.2f}x, worst-case success rate "
                  f"{worst_ok:.0%}, {wasted:.2f} GB-s billed to doomed "
                  f"attempts")
        if len(by_platform) > 1:
            cheapest = min(amplifications, key=amplifications.get)
            print(f"- {cheapest} absorbs this fault plan most cheaply "
                  f"(lowest worst-case amplification); partial "
                  f"executions are billed on every platform")
    return 0


def _group_by_platform(summaries) -> dict:
    """Summaries keyed by platform, in registry order."""
    grouped = {}
    for name in backend_names():
        group = [summary for summary in summaries
                 if summary.platform == name]
        if group:
            grouped[name] = group
    return grouped


def cmd_resilience(args: argparse.Namespace) -> int:
    """Outage-window sweep: availability, MTTR, burn and SLO verdicts."""
    from repro.core.mitigation import MitigationPolicy
    audit = True if getattr(args, "audit", False) else None
    variants = _filter_variants(args.variants, _selected_platforms(args))
    durations = args.sweep if args.sweep else [args.outage_duration]
    policy = MitigationPolicy(
        breaker_failure_threshold=args.breaker_threshold,
        breaker_recovery_timeout_s=args.breaker_timeout,
        hedge_after_s=args.hedge_after,
        deadline_factor=args.deadline_factor,
        request_timeout_s=args.request_timeout)
    specs = []
    for duration in durations:
        plan = FaultPlan(
            outage_windows=[(args.outage_start, duration)],
            outage_mode=args.mode,
            gray_latency_factor=args.gray_factor,
            gray_error_probability=args.gray_error_prob,
            brownout_delay_s=args.brownout,
            partition_drop_probability=args.partition_drop,
            retry_max_attempts=args.retries)
        for name in variants:
            specs.append(CampaignSpec(
                deployment=name, workload="ml-training", scale=args.scale,
                campaign="resilience", iterations=args.iterations,
                warmup=1, seed=args.seed, fault_plan=plan.to_items(),
                mitigation=policy.to_items(),
                slo_availability=args.slo_availability,
                slo_p99_s=args.slo_p99, audit=audit))
    outcomes = iter(_run_specs(args, specs))

    rows = []
    summaries = {}
    for duration in durations:
        for name in variants:
            summary = next(outcomes).resilience
            summaries[(duration, name)] = summary
            rows.append([
                name, duration, f"{summary.availability:.1%}",
                round(summary.mean_recovery_time_s, 1),
                round(summary.error_budget_burn, 2),
                summary.hedges_launched,
                round(summary.hedge_overspend_gb_s, 3),
                round(summary.mitigation_cost_overhead, 3),
                "PASS" if summary.slo_met else "FAIL"])
    slo_label = f"{args.slo_availability:.1%} avail"
    if args.slo_p99:
        slo_label += f", p99 <= {args.slo_p99:g}s"
    print(render_table(
        ["variant", "outage s", "avail", "MTTR s", "burn", "hedges",
         "overspend GB-s", "cost ovh", "SLO"],
        rows, title=f"Resilience through a {args.mode} outage at "
                    f"t={args.outage_start:.0f}s (SLO {slo_label})"))

    by_platform = _group_by_platform(summaries.values())
    if by_platform:
        print("\nTakeaways (per platform):")
        worst_avail = {}
        for platform, group in by_platform.items():
            availability = min(s.availability for s in group)
            worst_avail[platform] = availability
            mttr = max(s.mean_recovery_time_s for s in group)
            overspend = sum(s.hedge_overspend_gb_s for s in group)
            met = all(s.slo_met for s in group)
            print(f"- {platform}: worst-case availability "
                  f"{availability:.1%}, worst MTTR {mttr:.1f}s, "
                  f"{overspend:.3f} GB-s hedge overspend, SLO "
                  f"{'met' if met else 'MISSED'} across the sweep")
        if len(worst_avail) > 1:
            top = max(worst_avail.values())
            leaders = [name for name, value in worst_avail.items()
                       if value == top]
            if len(leaders) == 1:
                print(f"- {leaders[0]} holds the highest worst-case "
                      f"availability through this outage shape; "
                      f"replay-based recovery resumes where "
                      f"crash-restart re-runs from scratch")
            else:
                print(f"- {', '.join(leaders)} tie on worst-case "
                      f"availability ({top:.1%}) through this outage "
                      f"shape — differentiate with longer windows "
                      f"(--sweep) or gray mode (--mode gray)")
    return 0


def cmd_overload(args: argparse.Namespace) -> int:
    """Open-loop rate sweep past saturation: 429s, backpressure, shedding."""
    audit = True if getattr(args, "audit", False) else None
    variants = _filter_variants(args.variants, _selected_platforms(args))
    overrides = {
        "aws.concurrency_limit": args.concurrency,
        "aws.burst_concurrency": args.burst,
        "aws.refill_per_s": args.refill,
        "azure.max_instances": args.max_instances,
        "azure.queue_depth_limit": args.queue_depth,
        "azure.shed_deadline_s": args.shed_deadline,
        "gcp.max_instances": args.gcp_max_instances,
    }
    specs = []
    for rate in args.rates:
        for name in variants:
            specs.append(CampaignSpec(
                deployment=name, workload="ml-training", scale=args.scale,
                campaign="overload", arrival=args.arrival,
                arrival_rate_per_s=rate, horizon_s=args.horizon,
                seed=args.seed, calibration_overrides=overrides,
                audit=audit))
    outcomes = iter(_run_specs(args, specs))

    rows = []
    summaries = {}
    for rate in args.rates:
        for name in variants:
            summary = next(outcomes).overload
            summaries[(rate, name)] = summary
            rows.append([
                name, rate, summary.offered, summary.succeeded,
                summary.throttled, summary.shed, summary.failed,
                round(summary.goodput_per_s, 3),
                round(summary.retry_amplification, 2),
                round(summary.p99_latency_s, 1)])
    print(render_table(
        ["variant", "rate/s", "offered", "ok", "429", "shed", "failed",
         "goodput/s", "retry amp", "p99 s"],
        rows, title=f"Overload sweep ({args.scale}, {args.arrival} "
                    f"arrivals, {args.horizon:.0f}s horizon)"))

    by_platform = _group_by_platform(summaries.values())
    if by_platform:
        top = max(args.rates)
        print("\nTakeaways (per platform):")
        for platform, group in by_platform.items():
            rejected = max(summary.shed_rate + summary.throttle_rate
                           for summary in group)
            amplification = max(summary.retry_amplification
                                for summary in group)
            best = max(summary.goodput_per_s for summary in group)
            at_top = [summary for summary in group
                      if summary.rate_per_s == top]
            kept = (_safe_ratio(at_top[0].goodput_per_s, best)
                    if at_top and best > 0 else 0.0)
            inflation = _tail_inflation(group)
            print(f"- {platform}: up to {rejected:.0%} of offered "
                  f"requests rejected or shed, retry amplification "
                  f"{amplification:.2f}x, goodput holds {kept:.0%} of "
                  f"its peak at {top:g} req/s, tail inflation "
                  f"{inflation:.2f}x (p99 at max rate / p99 at min)")
        print("- mechanisms differ: AWS rejects at admission after "
              "exhausted backoff, Azure pushes back at bounded queues "
              "and sheds on deadline, GCP 429s at the gen1 instance cap "
              "while Workflows' retry policy re-offers the load")
    return 0


def _safe_ratio(value: float, baseline: float) -> float:
    return value / baseline if baseline > 0 else 0.0


def _tail_inflation(summaries) -> float:
    """p99 at the highest swept rate over p99 at the lowest."""
    ordered = sorted(summaries, key=lambda summary: summary.rate_per_s)
    if not ordered:
        return 0.0
    return _safe_ratio(ordered[-1].p99_latency_s, ordered[0].p99_latency_s)


def cmd_audit(args: argparse.Namespace) -> int:
    """Audited chaos + overload sweeps with a per-invariant verdict table.

    Runs a reliability sweep (crashes, transient errors, queue chaos)
    and an overload sweep (past saturation on both platforms) with the
    invariant auditor enabled, then reports per-invariant pass/violation
    counts.  Exit code 1 when any invariant was violated.
    """
    from repro.core.audit import collect_violations, merge_reports

    variants = _filter_variants(args.variants, _selected_platforms(args))
    overload_variants = _filter_variants(
        ["AWS-Step", "Az-Func", "GCP-Func"], _selected_platforms(args))
    plans = [
        FaultPlan(crash_probability=0.15,
                  retry_max_attempts=args.retries),
        FaultPlan(error_probability=0.2,
                  retry_max_attempts=args.retries),
        FaultPlan(queue_delay_probability=0.2, queue_delay_s=2.0,
                  queue_duplication_probability=0.3,
                  retry_max_attempts=args.retries),
    ]
    specs = []
    for plan in plans:
        for name in variants:
            specs.append(CampaignSpec(
                deployment=name, workload="ml-training", scale=args.scale,
                campaign="reliability", iterations=args.iterations,
                warmup=1, seed=args.seed, fault_plan=plan.to_items(),
                audit=True))
    overrides = {
        "aws.concurrency_limit": 8, "aws.burst_concurrency": 8,
        "aws.refill_per_s": 1.0, "azure.max_instances": 2,
        "azure.queue_depth_limit": 12, "azure.shed_deadline_s": 30.0,
        "gcp.max_instances": 2,
    }
    for rate in args.rates:
        for name in overload_variants:
            specs.append(CampaignSpec(
                deployment=name, workload="ml-training", scale=args.scale,
                campaign="overload", arrival="poisson",
                arrival_rate_per_s=rate, horizon_s=args.horizon,
                seed=args.seed, calibration_overrides=overrides,
                audit=True))

    with collect_violations():
        outcomes = _run_specs(args, specs)

    reports = [outcome.audit for outcome in outcomes]
    merged = merge_reports(reports)
    rows = [[invariant, passes, fails, "VIOLATED" if fails else "ok"]
            for invariant, (passes, fails) in merged.items()]
    print(render_table(
        ["invariant", "passes", "violations", "verdict"], rows,
        title=f"Invariant audit: {len(specs)} campaigns "
              f"({len(plans)}x{len(variants)} reliability + "
              f"{len(args.rates)}x{len(overload_variants)} overload)"))

    failed = False
    for spec, report in zip(specs, reports):
        if report is None or report.passed:
            continue
        failed = True
        print(f"\n{spec.deployment} {spec.campaign} "
              f"(seed {spec.seed}) violated:")
        for check in report.violations:
            print(f"  [{check.invariant}] {check.detail}")
            for item in check.evidence:
                print(f"    evidence: {item}")
    if not failed:
        print("\nall invariants held across the sweep")
    return 1 if failed else 0


def cmd_takeaways(args: argparse.Namespace) -> int:
    from repro.core.takeaways import (
        evaluate_ml_takeaways,
        evaluate_video_takeaways,
        render_takeaways,
    )
    takeaways = (evaluate_ml_takeaways(iterations=args.iterations,
                                       seed=args.seed)
                 + evaluate_video_takeaways(seed=args.seed))
    print(render_takeaways(takeaways))
    return 0 if all(takeaway.holds for takeaway in takeaways) else 1


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(getattr(args, "cache_dir", None))
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached campaigns from {cache.root}")
    else:
        print(f"cache at {cache.root}: {len(cache)} campaigns")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Finish an interrupted sweep by re-dispatching its recorded argv."""
    journal = SweepJournal(args.journal_path)
    try:
        manifest = journal.open()
    except JournalError as error:
        raise SystemExit(f"repro: {error}") from error
    argv = manifest.argv
    if argv is None:
        raise SystemExit(
            f"repro: journal at {journal.root} does not record the "
            f"command that created it; re-run the original command "
            f"with --journal {journal.root} --resume")
    # Point --journal at the path the user named (the journal may have
    # moved since creation) and make the reuse explicit.
    rewritten: List[str] = []
    skip_next = False
    for item in argv:
        if skip_next:
            skip_next = False
            continue
        if item == "--journal":
            rewritten += ["--journal", str(args.journal_path)]
            skip_next = True
        elif item.startswith("--journal="):
            rewritten.append(f"--journal={args.journal_path}")
        else:
            rewritten.append(item)
    if not any(item == "--journal" or item.startswith("--journal=")
               for item in rewritten):
        # The recorded command never named a journal (e.g. the sweep
        # was journaled programmatically); --resume without --journal
        # is an error, so supply the one the user pointed us at.
        rewritten += ["--journal", str(args.journal_path)]
    if "--resume" not in rewritten:
        rewritten.append("--resume")
    print(f"resuming sweep at {journal.root}: {journal.progress()}")
    return main(rewritten)


def cmd_fuzz_run(args: argparse.Namespace) -> int:
    """One deterministic fuzz session: generate, check, shrink, save."""
    from repro.core import fuzz as fuzz_mod

    _check_resume_flags(args)
    journal = getattr(args, "journal", None)
    seed = args.fuzz_seed if args.fuzz_seed is not None else args.seed
    restarts = getattr(args, "max_worker_restarts", None)
    try:
        result = fuzz_mod.run_fuzz(
            seed=seed, budget=args.budget,
            time_budget_s=args.time_budget,
            journal=journal, cache=_cache(args),
            workers=getattr(args, "jobs", 1),
            corpus_dir=args.corpus_out,
            shrink_findings=not args.no_shrink,
            argv=getattr(args, "argv", None),
            resume=getattr(args, "resume", False),
            spec_timeout_s=getattr(args, "spec_timeout", None),
            max_restarts=restarts if restarts is not None else 2,
            log=lambda line: print(line, file=sys.stderr))
    except JournalError as error:
        raise SystemExit(f"repro: {error}") from error
    except KeyboardInterrupt:
        _interrupted_exit(journal)
    print(f"fuzz seed {seed}: {result.executed}/{result.budget} specs "
          f"checked, {len(result.findings)} finding(s)")
    if result.exhausted:
        print(f"time budget exhausted after {result.executed} of "
              f"{result.budget} specs", file=sys.stderr)
        if journal is not None:
            print(f"finish the session with: repro resume {journal}",
                  file=sys.stderr)
    for verdict in result.findings:
        spec = verdict.spec
        print(f"  #{verdict.index} {spec.deployment} {spec.campaign} "
              f"[{verdict.spec_hash[:12]}]: "
              f"{', '.join(verdict.findings)}")
    for path in result.corpus_paths:
        print(f"  minimal repro: {path}")
    return 1 if result.findings else 0


def cmd_fuzz_replay(args: argparse.Namespace) -> int:
    """Re-check every corpus entry; red (a bug came back) exits 1."""
    from repro.core import fuzz as fuzz_mod

    corpus = Path(args.corpus)
    if not corpus.is_dir():
        print(f"no corpus at {corpus}; nothing to replay")
        return 0
    results = fuzz_mod.replay_corpus(corpus)
    if not results:
        print(f"corpus at {corpus} is empty; nothing to replay")
        return 0
    red = 0
    for result in results:
        if result.error is not None:
            red += 1
            print(f"{result.path.name}: INVALID — {result.error}")
        elif result.reproduced:
            red += 1
            print(f"{result.path.name}: RED — {result.fingerprint} "
                  f"still reproduces "
                  f"({', '.join(result.findings)})")
        else:
            print(f"{result.path.name}: green")
    print(f"{len(results) - red} of {len(results)} corpus entries "
          f"stay green")
    return 1 if red else 0


def cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    """Shrink a failing spec (or repro document) to a minimal repro."""
    from repro.core import fuzz as fuzz_mod
    from repro.core.persistence import SpecValidationError, spec_from_dict

    if args.spec == "-":
        where, text = "<stdin>", sys.stdin.read()
    else:
        where = args.spec
        try:
            text = Path(args.spec).read_text()
        except OSError as error:
            raise SystemExit(f"repro: {error}") from error
    try:
        document = json.loads(text)
    except ValueError as error:
        raise SystemExit(f"repro: {where}: not JSON: {error}") from error
    fingerprint = None
    payload = document
    if isinstance(document, dict) and \
            document.get("kind") == "fuzz-repro":
        fingerprint = document.get("fingerprint")
        payload = document.get("spec")
    try:
        spec = spec_from_dict(payload)
    except SpecValidationError as error:
        raise SystemExit(f"repro: {where}: {error}") from error
    verdict = fuzz_mod.check_spec(spec)
    if verdict.ok:
        print(f"spec {verdict.spec_hash[:12]} checks clean on every "
              f"path; nothing to shrink")
        return 0
    if fingerprint not in verdict.findings:
        fingerprint = verdict.findings[0]
    minimal, spent = fuzz_mod.shrink(spec, fingerprint)
    if args.out is not None:
        path = fuzz_mod.write_repro(Path(args.out), minimal, fingerprint)
        print(f"wrote {path} after {spent} checks ({fingerprint})")
    else:
        blob = fuzz_mod.repro_document(minimal, fingerprint)
        print(json.dumps(blob, indent=2, sort_keys=True))
        print(f"shrunk in {spent} checks ({fingerprint})",
              file=sys.stderr)
    return 0


def cmd_paper(args: argparse.Namespace) -> int:
    print("Condensed paper reproduction "
          "(full version: pytest benchmarks/ --benchmark-only -s)\n")
    args.scale = "small"
    args.iterations = 8
    args.variants = ML_VARIANTS
    cmd_latency(args)
    print()
    args.workers = [1, 20, 80]
    cmd_video(args)
    print()
    args.days = 1.0
    cmd_coldstart(args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stateful serverless workbench — IISWC'21 reproduction")
    parser.add_argument("--seed", type=int, default=0,
                        help="testbed random seed")
    parser.add_argument("--save", metavar="PATH", default=None,
                        help="write campaign results to a JSON file "
                             "(latency command)")
    parser.add_argument("--jobs", "-j", type=_positive_int, default=1,
                    metavar="N",
                        help="campaign worker processes (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the campaign cache")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="campaign cache directory (default "
                             "$REPRO_CACHE_DIR or ~/.cache/repro/campaigns)")
    # The cache/jobs flags also work after the subcommand (the natural
    # place to type them); SUPPRESS keeps the top-level values when
    # absent.
    cache_opts = argparse.ArgumentParser(add_help=False)
    cache_opts.add_argument("--no-cache", action="store_true",
                            default=argparse.SUPPRESS,
                            help=argparse.SUPPRESS)
    cache_opts.add_argument("--cache-dir", metavar="PATH",
                            default=argparse.SUPPRESS,
                            help=argparse.SUPPRESS)
    cache_opts.add_argument("--jobs", "-j", type=_positive_int,
                            dest="jobs",
                            metavar="N", default=argparse.SUPPRESS,
                            help=argparse.SUPPRESS)
    # Campaign commands take a backend selection; the default (None)
    # means every registered backend.
    platform_opts = argparse.ArgumentParser(add_help=False)
    platform_opts.add_argument(
        "--platforms", "-p", type=_platforms, default=None,
        metavar="NAME,NAME,...",
        help="restrict variants to these platform backends "
             f"(default: all of {list(backend_names())})")
    # Crash-safety flags shared by every campaign command.  Any of them
    # switches the sweep onto the SupervisedRunner.
    supervise_opts = argparse.ArgumentParser(add_help=False)
    supervise_opts.add_argument(
        "--journal", metavar="DIR", default=None,
        help="checkpoint each completed campaign to this sweep-journal "
             "directory; finish a killed sweep with `repro resume DIR`")
    supervise_opts.add_argument(
        "--resume", action="store_true",
        help="reuse an existing journal at --journal, re-running only "
             "the specs it is missing")
    supervise_opts.add_argument(
        "--spec-timeout", type=_positive_float, dest="spec_timeout",
        metavar="SECONDS", default=None,
        help="kill and retry any campaign still running after this "
             "many wall-clock seconds")
    supervise_opts.add_argument(
        "--max-worker-restarts", type=_nonnegative_int, default=None,
        metavar="N",
        help="restart budget per campaign after worker crashes, stalls "
             "or timeouts (default 2)")
    commands = parser.add_subparsers(dest="command", required=True)

    latency = commands.add_parser(
        "latency", parents=[cache_opts, platform_opts, supervise_opts], help="ML training latency across variants (Fig 6)")
    latency.add_argument("--scale", choices=["small", "large"],
                         default="small")
    latency.add_argument("--iterations", type=int, default=10)
    latency.add_argument("--variants", type=_variants, default=ML_VARIANTS)
    latency.add_argument("--workers", type=_positive_int, dest="jobs",
                         metavar="N",
                         default=argparse.SUPPRESS,
                         help="campaign worker processes (alias for -j)")
    latency.set_defaults(func=cmd_latency)

    inference = commands.add_parser(
        "inference", parents=[cache_opts, platform_opts, supervise_opts], help="ML inference latency (Fig 9)")
    inference.add_argument("--scale", choices=["small", "large"],
                           default="small")
    inference.add_argument("--iterations", type=int, default=10)
    inference.add_argument("--workers", type=_positive_int, dest="jobs",
                         metavar="N",
                           default=argparse.SUPPRESS,
                           help="campaign worker processes (alias for -j)")
    inference.set_defaults(func=cmd_inference)

    coldstart = commands.add_parser(
        "coldstart", parents=[cache_opts, platform_opts, supervise_opts], help="hourly cold-start campaign (Fig 10)")
    coldstart.add_argument("--days", type=float, default=4.0)
    coldstart.add_argument("--workers", type=_positive_int, dest="jobs",
                         metavar="N",
                           default=argparse.SUPPRESS,
                           help="campaign worker processes (alias for -j)")
    coldstart.set_defaults(func=cmd_coldstart)

    video = commands.add_parser(
        "video", parents=[cache_opts, platform_opts, supervise_opts], help="video fan-out scaling (Fig 12); use -j for "
                      "worker processes")
    video.add_argument("--workers", type=_worker_list,
                       default=[1, 5, 10, 20, 40, 80],
                       help="fan-out widths to sweep (paper x-axis)")
    video.set_defaults(func=cmd_video)

    cost = commands.add_parser(
        "cost", parents=[cache_opts, platform_opts, supervise_opts], help="monthly video cost projection (Fig 15); use -j for "
                     "worker processes")
    cost.add_argument("--workers", type=int, default=20,
                      help="fan-out width of the measured deployment")
    cost.add_argument("--runs-per-month", type=int, default=30)
    cost.add_argument("--measured-runs", type=int, default=4)
    cost.set_defaults(func=cmd_cost)

    reliability = commands.add_parser(
        "reliability", parents=[cache_opts, platform_opts, supervise_opts],
        help="inject faults and measure the price of reliability")
    reliability.add_argument("--crash-prob", type=_probability, default=0.1,
                             help="per-invocation container crash "
                                  "probability (default 0.1)")
    reliability.add_argument("--sweep", type=_probability_list, default=None,
                             metavar="P1,P2,...",
                             help="sweep several crash probabilities "
                                  "(overrides --crash-prob)")
    reliability.add_argument("--error-prob", type=_probability, default=0.0,
                             help="transient handler exception probability")
    reliability.add_argument("--straggler-prob", type=_probability,
                             default=0.0,
                             help="invocation straggler probability")
    reliability.add_argument("--retries", type=_positive_int, default=3,
                             help="total attempts synthesized per "
                                  "activity/state (default 3)")
    reliability.add_argument("--variants", type=_variants,
                             default=["AWS-Step", "Az-Dorch", "GCP-Flows"])
    reliability.add_argument("--scale", choices=["small", "large"],
                             default="small")
    reliability.add_argument("--iterations", type=int, default=5)
    reliability.add_argument("--workers", type=_positive_int, dest="jobs",
                             metavar="N", default=argparse.SUPPRESS,
                             help="campaign worker processes (alias for -j)")
    reliability.add_argument("--audit", action="store_true",
                             help="verify runtime invariants during the "
                                  "sweep (raises on violation)")
    reliability.set_defaults(func=cmd_reliability)

    resilience = commands.add_parser(
        "resilience", parents=[cache_opts, platform_opts, supervise_opts],
        help="drive workloads through correlated outage windows with "
             "client-side mitigation and report SLO verdicts")
    resilience.add_argument("--outage-start", type=float, default=120.0,
                            help="outage window start, simulated seconds "
                                 "(default 120)")
    resilience.add_argument("--outage-duration", type=float, default=60.0,
                            help="outage window length in seconds "
                                 "(default 60)")
    resilience.add_argument("--sweep", type=_rate_list, default=None,
                            metavar="D1,D2,...",
                            help="sweep several outage durations "
                                 "(overrides --outage-duration)")
    resilience.add_argument("--mode", choices=["crash", "gray"],
                            default="crash",
                            help="what the window does: crash drops warm "
                                 "pools and kills in-window runs; gray "
                                 "slows and errors them (default crash)")
    resilience.add_argument("--gray-factor", type=float, default=3.0,
                            help="gray-mode latency multiplier (default 3)")
    resilience.add_argument("--gray-error-prob", type=_probability,
                            default=0.2,
                            help="gray-mode transient-error probability "
                                 "(default 0.2)")
    resilience.add_argument("--brownout", type=float, default=0.0,
                            help="extra queue delay inside the window, "
                                 "seconds (default 0)")
    resilience.add_argument("--partition-drop", type=_probability,
                            default=0.0,
                            help="in-window probability the broker drops "
                                 "a message (default 0)")
    resilience.add_argument("--retries", type=_positive_int, default=3,
                            help="total attempts synthesized per "
                                 "activity/state (default 3)")
    resilience.add_argument("--hedge-after", type=float, default=30.0,
                            help="hedge a duplicate attempt after this "
                                 "many seconds; 0 disables (default 30)")
    resilience.add_argument("--breaker-threshold", type=int, default=3,
                            help="consecutive failures that open the "
                                 "circuit; 0 disables (default 3)")
    resilience.add_argument("--breaker-timeout", type=float, default=30.0,
                            help="breaker open-state dwell before a "
                                 "half-open probe (default 30)")
    resilience.add_argument("--deadline-factor", type=float, default=6.0,
                            help="abandon calls past this multiple of the "
                                 "latency EWMA; 0 disables (default 6)")
    resilience.add_argument("--request-timeout", type=float, default=240.0,
                            help="hard per-call timeout backstop, seconds "
                                 "(default 240)")
    resilience.add_argument("--slo-availability", type=_probability,
                            default=0.999,
                            help="availability SLO target (default 0.999)")
    resilience.add_argument("--slo-p99", type=float, default=0.0,
                            help="p99 latency SLO in seconds; 0 disables "
                                 "(default 0)")
    resilience.add_argument("--variants", type=_variants,
                            default=["AWS-Step", "Az-Dorch", "GCP-Flows"])
    resilience.add_argument("--scale", choices=["small", "large"],
                            default="small")
    resilience.add_argument("--iterations", type=int, default=6)
    resilience.add_argument("--workers", type=_positive_int, dest="jobs",
                            metavar="N", default=argparse.SUPPRESS,
                            help="campaign worker processes (alias for -j)")
    resilience.add_argument("--audit", action="store_true",
                            help="verify runtime invariants during the "
                                 "sweep (raises on violation)")
    resilience.set_defaults(func=cmd_resilience)

    overload = commands.add_parser(
        "overload", parents=[cache_opts, platform_opts, supervise_opts],
        help="sweep open-loop arrival rates past saturation: throttling, "
             "backpressure and load shedding")
    overload.add_argument("--rates", type=_rate_list,
                          default=[0.2, 0.5, 1.0, 2.0], metavar="R1,R2,...",
                          help="offered arrival rates in req/s "
                               "(default 0.2,0.5,1.0,2.0)")
    overload.add_argument("--horizon", type=float, default=120.0,
                          help="arrival window length in seconds "
                               "(default 120)")
    overload.add_argument("--arrival", choices=["poisson", "uniform",
                                                "bursty"],
                          default="poisson",
                          help="open-loop arrival process (default poisson)")
    overload.add_argument("--variants", type=_variants,
                          default=["AWS-Step", "Az-Func", "GCP-Func"])
    overload.add_argument("--scale", choices=["small", "large"],
                          default="small")
    overload.add_argument("--concurrency", type=_positive_int, default=24,
                          help="AWS concurrent execution limit (default 24)")
    overload.add_argument("--burst", type=_positive_int, default=24,
                          help="AWS token-bucket burst capacity "
                               "(default 24)")
    overload.add_argument("--refill", type=float, default=4.0,
                          help="AWS token-bucket refill rate per second "
                               "(default 4)")
    overload.add_argument("--max-instances", type=_positive_int, default=4,
                          help="Azure scale-controller instance cap "
                               "(default 4)")
    overload.add_argument("--queue-depth", type=_positive_int, default=48,
                          help="Azure dispatch/work-item queue depth bound "
                               "(default 48)")
    overload.add_argument("--shed-deadline", type=float, default=45.0,
                          help="Azure queue-wait budget in seconds before "
                               "work is shed (default 45)")
    overload.add_argument("--gcp-max-instances", type=_positive_int,
                          default=4,
                          help="GCP Cloud Functions gen1 instance cap — "
                               "one request per instance (default 4)")
    overload.add_argument("--workers", type=_positive_int, dest="jobs",
                          metavar="N", default=argparse.SUPPRESS,
                          help="campaign worker processes (alias for -j)")
    overload.add_argument("--audit", action="store_true",
                          help="verify runtime invariants during the "
                               "sweep (raises on violation)")
    overload.set_defaults(func=cmd_overload)

    audit = commands.add_parser(
        "audit", parents=[cache_opts, platform_opts, supervise_opts],
        help="verify runtime invariants (conservation, billing, delivery "
             "semantics) across chaos and overload sweeps")
    audit.add_argument("--variants", type=_variants,
                       default=["AWS-Step", "Az-Dorch", "GCP-Flows"],
                       help="reliability-sweep variants "
                            "(default AWS-Step,Az-Dorch,GCP-Flows)")
    audit.add_argument("--scale", choices=["small", "large"],
                       default="small")
    audit.add_argument("--iterations", type=int, default=3,
                       help="measured runs per reliability campaign "
                            "(default 3)")
    audit.add_argument("--retries", type=_positive_int, default=3,
                       help="total attempts synthesized per activity/state "
                            "(default 3)")
    audit.add_argument("--rates", type=_rate_list, default=[0.5, 2.0],
                       metavar="R1,R2,...",
                       help="overload-sweep arrival rates in req/s "
                            "(default 0.5,2.0)")
    audit.add_argument("--horizon", type=float, default=60.0,
                       help="overload arrival window in seconds "
                            "(default 60)")
    audit.add_argument("--workers", type=_positive_int, dest="jobs",
                       metavar="N", default=argparse.SUPPRESS,
                       help="campaign worker processes (alias for -j)")
    audit.set_defaults(func=cmd_audit)

    takeaways = commands.add_parser(
        "takeaways", help="re-derive the paper's key-takeaway bullets")
    takeaways.add_argument("--iterations", type=int, default=8)
    takeaways.set_defaults(func=cmd_takeaways)

    cache = commands.add_parser(
        "cache", parents=[cache_opts], help="inspect or clear the campaign result cache")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cached campaign")
    cache.set_defaults(func=cmd_cache)

    resume = commands.add_parser(
        "resume", help="finish an interrupted sweep from its journal "
                       "(re-runs only the missing campaigns)")
    resume.add_argument("journal_path", metavar="JOURNAL",
                        help="path of the sweep-journal directory a "
                             "campaign command wrote via --journal")
    resume.set_defaults(func=cmd_resume)

    fuzz = commands.add_parser(
        "fuzz", help="deterministic campaign fuzzer: generate specs, "
                     "differentially check every execution path, shrink "
                     "and replay findings")
    fuzz_cmds = fuzz.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_cmds.add_parser(
        "run", parents=[cache_opts, supervise_opts],
        help="draw specs from a seeded stream and differentially check "
             "each one (exit 1 on findings)")
    fuzz_run.add_argument("--seed", type=int, dest="fuzz_seed",
                          default=None,
                          help="fuzz stream seed (default: the "
                               "top-level --seed)")
    fuzz_run.add_argument("--budget", type=_positive_int, default=50,
                          metavar="N",
                          help="specs to draw and check (default 50)")
    fuzz_run.add_argument("--time-budget", type=_positive_float,
                          dest="time_budget", metavar="SECONDS",
                          default=None,
                          help="stop drawing new work after this many "
                               "wall-clock seconds (what ran is still "
                               "deterministic; with --journal the rest "
                               "is resumable)")
    fuzz_run.add_argument("--corpus-out", metavar="DIR", default="corpus",
                          help="write shrunk minimal reproducers here "
                               "(default ./corpus; only created on "
                               "findings)")
    fuzz_run.add_argument("--no-shrink", action="store_true",
                          help="save failing specs as found, without "
                               "minimizing them first")
    fuzz_run.set_defaults(func=cmd_fuzz_run)

    fuzz_replay = fuzz_cmds.add_parser(
        "replay",
        help="re-check every regression-corpus entry; exit 1 if any "
             "recorded bug reproduces again")
    fuzz_replay.add_argument("corpus", nargs="?", default="corpus",
                             metavar="DIR",
                             help="corpus directory (default ./corpus)")
    fuzz_replay.set_defaults(func=cmd_fuzz_replay)

    fuzz_shrink = fuzz_cmds.add_parser(
        "shrink",
        help="minimize a failing spec while preserving its failure "
             "fingerprint; prints a pasteable repro document")
    fuzz_shrink.add_argument("spec", metavar="SPEC.json",
                             help="a spec or fuzz-repro JSON file, or "
                                  "`-` for stdin")
    fuzz_shrink.add_argument("--out", metavar="PATH", default=None,
                             help="write the repro document here instead "
                                  "of stdout")
    fuzz_shrink.set_defaults(func=cmd_fuzz_shrink)

    paper = commands.add_parser(
        "paper", parents=[cache_opts, platform_opts], help="condensed run of the main experiments")
    paper.set_defaults(func=cmd_paper)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Remember the raw argv so a --journal sweep's manifest can record
    # the command that created it (what `repro resume` re-dispatches).
    args.argv = list(argv) if argv is not None else sys.argv[1:]
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
