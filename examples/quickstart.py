"""Quickstart: deploy one workflow on both simulated clouds.

Builds a testbed (one simulated world containing an AWS stack and an
Azure stack), deploys a three-stage workflow on each platform's stateful
offering — a Step Functions state machine and a Durable orchestrator —
runs both, and prints latency and cost side by side.

Run:  python examples/quickstart.py
"""

from repro.core import Testbed
from repro.core.report import render_table
from repro.azure import OrchestratorSpec
from repro.platforms.base import FunctionSpec


# -- 1. the workload: three stages, each a generator handler ----------------

def fetch(ctx, event):
    """Pretend to fetch an order record."""
    yield from ctx.busy(0.4)                    # simulated compute seconds
    return {"order": event["order_id"], "total": 99.5}


def enrich(ctx, event):
    yield from ctx.busy(0.8)
    return dict(event, tax=event["total"] * 0.08)


def store(ctx, event):
    yield from ctx.blob.put(f"orders/{event['order']}", event)
    yield from ctx.busy(0.2)
    return {"stored": event["order"]}


def main():
    testbed = Testbed(seed=7)

    # -- 2. deploy on AWS: three Lambdas + a state machine -----------------
    for name, handler in [("fetch", fetch), ("enrich", enrich),
                          ("store", store)]:
        testbed.lambdas.register(FunctionSpec(
            name=name, handler=handler, memory_mb=512, timeout_s=60.0))
    testbed.stepfunctions.create_state_machine("order-flow", {
        "StartAt": "Fetch",
        "States": {
            "Fetch": {"Type": "Task", "Resource": "fetch",
                      "Next": "Enrich"},
            "Enrich": {"Type": "Task", "Resource": "enrich",
                       "Next": "Store"},
            "Store": {"Type": "Task", "Resource": "store", "End": True},
        },
    })

    # -- 3. deploy on Azure: three activities + a durable orchestrator -----
    for name, handler in [("az-fetch", fetch), ("az-enrich", enrich),
                          ("az-store", store)]:
        testbed.app.register(FunctionSpec(
            name=name, handler=handler, memory_mb=1536, timeout_s=60.0,
            measured_memory_mb=512))

    def orchestrator(context):
        order = yield context.call_activity("az-fetch", context.input)
        enriched = yield context.call_activity("az-enrich", order)
        result = yield context.call_activity("az-store", enriched)
        return result

    testbed.durable.register_orchestrator(
        OrchestratorSpec("order-flow", orchestrator))

    # -- 4. run one execution on each platform ------------------------------
    aws_record = testbed.run(testbed.stepfunctions.start_execution(
        "order-flow", {"order_id": "A-1001"}))

    azure_output = testbed.run(testbed.durable.client.run(
        "order-flow", {"order_id": "A-1001"}))
    azure_instance = list(testbed.durable.taskhub.instances.values())[-1]

    # -- 5. compare ------------------------------------------------------------
    aws_cost = testbed.aws_prices.breakdown(testbed.aws.billing,
                                            testbed.aws.meter)
    azure_cost = testbed.azure_prices.breakdown(testbed.azure.billing,
                                                testbed.azure.meter)
    print(render_table(
        ["platform", "output", "latency (s)", "compute $", "stateful $"],
        [
            ["AWS Step Functions", aws_record.output,
             aws_record.duration, aws_cost.stateless, aws_cost.stateful],
            ["Azure Durable", azure_output,
             azure_instance.end_to_end_latency, azure_cost.stateless,
             azure_cost.stateful],
        ],
        title="Quickstart: the same workflow on both simulated clouds"))
    print(f"\nsimulated time elapsed: {testbed.now:.1f}s "
          f"(wall time: a few milliseconds)")


if __name__ == "__main__":
    main()
