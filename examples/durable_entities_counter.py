"""Durable entities beyond the paper: a bank of stateful counters.

Shows the library's Azure Durable API on its own terms — entities as
addressable, persistent, serialized state holders — by building a tiny
page-view analytics service: orchestrations record views against per-page
counter entities, a client signal resets one, and final states are read
back directly from the entity store.

Run:  python examples/durable_entities_counter.py
"""

from repro.azure import EntityId, EntitySpec, OrchestratorSpec
from repro.core import Testbed
from repro.core.report import render_table


def record_view(ctx, state, page):
    """Entity operation: bump the counter, return the new value."""
    yield from ctx.busy(0.05)
    new_state = (state or 0) + 1
    return new_state, new_state


def reset(ctx, state, _input):
    yield from ctx.busy(0.01)
    return 0, None


def main():
    testbed = Testbed(seed=99)
    testbed.durable.register_entity(EntitySpec(
        name="PageCounter",
        operations={"record": record_view, "reset": reset},
        initial_state=lambda: 0))

    def track_session(context):
        """One user session: views several pages, serialized per page."""
        pages = context.input
        tasks = [context.call_entity(EntityId("PageCounter", page),
                                     "record")
                 for page in pages]
        counts = yield context.task_all(tasks)
        return dict(zip(pages, counts))

    testbed.durable.register_orchestrator(
        OrchestratorSpec("track-session", track_session))

    client = testbed.durable.client
    sessions = [
        ["home", "pricing"],
        ["home", "docs", "pricing"],
        ["home"],
        ["docs", "docs2"],
    ]
    for session in sessions:
        testbed.run(client.run("track-session", session))

    # Reset one counter with a fire-and-forget client signal.
    testbed.run(client.signal_entity(EntityId("PageCounter", "pricing"),
                                     "reset"))
    testbed.advance(30.0)   # let the pump process the signal

    rows = []
    for page in ["home", "pricing", "docs", "docs2"]:
        state = testbed.run(client.read_entity_state(
            EntityId("PageCounter", page)))
        rows.append([page, state])
    print(render_table(["page", "views"], rows,
                       title="Entity states after four sessions "
                             "(pricing was reset)"))

    meter = testbed.azure.meter
    print(f"\nstorage transactions so far: {len(meter):,} "
          f"(queue={meter.count(service='queue'):,}, "
          f"table={meter.count(service='table'):,}) — every one billable")


if __name__ == "__main__":
    main()
