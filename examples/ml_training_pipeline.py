"""The paper's ML-training case study, end to end.

Deploys the machine-learning training workflow (feature engineering →
PCA → model selection over RandomForest/KNN/Lasso) in all six Table II
variants, runs a short measurement campaign on each, and prints the
latency and cost comparison — a miniature of the paper's Figures 6 and 11.

Run:  python examples/ml_training_pipeline.py [small|large]
"""

import sys

from repro.core import (
    ExperimentRunner,
    Testbed,
    build_ml_training_deployments,
    cost_report,
)
from repro.core.deployments.ml import ml_workload
from repro.core.report import render_table

ITERATIONS = 8


def main(scale: str = "small"):
    workload = ml_workload(scale, seed=0)
    trained = workload.trained
    print(f"dataset: {workload.train_dataset.n_rows} training rows, "
          f"26 features (12 categorical)")
    print("real model-selection results:")
    for result in trained.results:
        marker = " <- best fit" if result is trained.best else ""
        print(f"  {result.candidate.name:10s} validation MSE "
              f"{result.error:14,.0f}  model {result.payload_size:>9,} B"
              f"{marker}")
    print()

    runner = ExperimentRunner(think_time_s=30.0, settle_time_s=5.0)
    rows = []
    for name in ["AWS-Lambda", "AWS-Step", "Az-Func", "Az-Queue",
                 "Az-Dorch", "Az-Dent"]:
        testbed = Testbed(seed=13)
        deployment = build_ml_training_deployments(testbed, scale)[name]
        campaign = runner.run_campaign(deployment, iterations=ITERATIONS,
                                       warmup=1)
        stats = campaign.stats()
        report = cost_report(deployment, per_runs=ITERATIONS + 1)
        rows.append([name, "yes" if deployment.stateful else "no",
                     stats.median, stats.p99, report.gb_s,
                     f"{report.transaction_share:.1%}",
                     f"${report.total:.6f}"])

    print(render_table(
        ["variant", "stateful", "median s", "p99 s", "GB-s/run",
         "tx share", "cost/run"],
        rows,
        title=f"ML training workflow, {scale} dataset, "
              f"{ITERATIONS} iterations per variant"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
