"""Cost explorer: when does each platform win on price?

The paper's pricing takeaway is that AWS charges per state transition
(nothing while idle) while Azure's Durable framework keeps polling the
tenant's storage queues around the clock.  That difference makes the
cheaper platform depend on *how often the workflow runs*: at low request
rates Azure's constant polling dominates its bill; at high rates AWS's
higher compute price does.  This example sweeps the monthly run rate for
the video workload and finds the crossover.

Run:  python examples/cost_explorer.py
"""

from repro.core import Testbed, build_video_deployments, cost_report
from repro.core.costs import monthly_projection
from repro.core.report import render_table

WORKERS = 20
MEASURED_RUNS = 4
RUN_RATES = [5, 10, 30, 100, 300, 1000, 3000]


def per_run_report(name: str):
    testbed = Testbed(seed=55)
    deployment = build_video_deployments(testbed, n_workers=WORKERS)[name]
    deployment.deploy()
    for _ in range(MEASURED_RUNS):
        testbed.run(deployment.invoke())
        testbed.advance(30.0)
    return cost_report(deployment, per_runs=MEASURED_RUNS)


def azure_idle_transactions_per_month() -> int:
    testbed = Testbed(seed=56)
    deployment = build_video_deployments(testbed, n_workers=WORKERS)[
        "Az-Dorch"]
    deployment.deploy()
    testbed.run(deployment.invoke())
    before = len(testbed.azure.meter)
    testbed.advance(3600.0)
    return (len(testbed.azure.meter) - before) * 24 * 30


def main():
    aws = per_run_report("AWS-Step")
    azure = per_run_report("Az-Dorch")
    idle = azure_idle_transactions_per_month()
    print(f"per-run cost: AWS-Step=${aws.total:.5f}, "
          f"Az-Dorch=${azure.total:.5f}")
    print(f"Azure idle polling: {idle:,} transactions/month "
          f"(${idle * 4e-8:.2f}/month even if nothing ever runs)\n")

    rows = []
    crossover = None
    for rate in RUN_RATES:
        aws_month = monthly_projection(aws, rate).total
        azure_month = monthly_projection(
            azure, rate, idle_transactions_per_month=idle).total
        winner = "AWS" if aws_month < azure_month else "Azure"
        if winner == "Azure" and crossover is None:
            crossover = rate
        rows.append([rate, aws_month, azure_month, winner])

    print(render_table(
        ["runs/month", "AWS-Step $/mo", "Az-Dorch $/mo", "cheaper"],
        rows, title=f"Monthly cost vs run rate (video, {WORKERS} workers)"))
    if crossover:
        print(f"\nAzure overtakes AWS at roughly {crossover} runs/month: "
              "its idle polling is a fixed tax, but each run is cheaper.")
    else:
        print("\nAWS stays cheaper across the swept range.")


if __name__ == "__main__":
    main()
