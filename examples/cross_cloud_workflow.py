"""Author a workflow once, deploy it to both simulated clouds.

The paper's motivating tension (§I): AWS requires a JSON state machine,
Azure a code-first orchestrator — two incompatible programming models
that force tenants to choose a vendor before writing a line of business
logic.  The library's workflow IR removes that choice from the authoring
step: the same graph compiles to an Amazon-States-Language definition
*and* to a durable orchestrator, so the platform decision can be made —
and re-made — on measured latency and cost.

Run:  python examples/cross_cloud_workflow.py
"""

from repro.core import Testbed, Workflow, map_over, sequence, task
from repro.core.report import render_table
from repro.platforms.base import FunctionSpec


# -- business logic: a document-scoring pipeline -----------------------------

def split_corpus(ctx, event):
    """Break the corpus into per-document work items."""
    yield from ctx.busy(0.5)
    return {"corpus": event["corpus"],
            "documents": [{"doc": index} for index in range(event["count"])]}


def score_document(ctx, event):
    yield from ctx.busy(1.5)
    return {"doc": event["doc"], "score": (event["doc"] * 37) % 100}


def rank(ctx, event):
    yield from ctx.busy(0.3)
    ranked = sorted(event, key=lambda item: -item["score"])
    return {"top": ranked[0], "n": len(ranked)}


PIPELINE = Workflow("doc-scoring", sequence(
    task("split"),
    map_over("$.documents", task("score")),
    task("rank"),
))


def main():
    testbed = Testbed(seed=17)
    for name, handler in [("split", split_corpus),
                          ("score", score_document), ("rank", rank)]:
        testbed.lambdas.register(FunctionSpec(
            name=name, handler=handler, memory_mb=1024, timeout_s=120.0))
        testbed.app.register(FunctionSpec(
            name=name, handler=handler, memory_mb=1536, timeout_s=120.0,
            measured_memory_mb=512))

    print(f"workflow functions: {PIPELINE.functions()}")
    print(f"compiled ASL states: "
          f"{list(PIPELINE.to_asl()['States'])}\n")

    PIPELINE.deploy_aws(testbed)
    PIPELINE.deploy_azure(testbed)

    payload = {"corpus": "tickets", "count": 12}
    record = testbed.run(
        testbed.stepfunctions.start_execution("doc-scoring", payload))
    azure_output = testbed.run(
        testbed.durable.client.run("doc-scoring", payload))
    instance = list(testbed.durable.taskhub.instances.values())[-1]

    assert record.output == azure_output, "the two clouds must agree"
    aws_cost = testbed.aws_prices.breakdown(testbed.aws.billing,
                                            testbed.aws.meter)
    azure_cost = testbed.azure_prices.breakdown(testbed.azure.billing,
                                                testbed.azure.meter)
    print(render_table(
        ["platform", "output (top doc)", "latency (s)", "total $"],
        [["AWS Step Functions", record.output["top"], record.duration,
          aws_cost.total],
         ["Azure Durable", azure_output["top"],
          instance.end_to_end_latency, azure_cost.total]],
        title="One workflow definition, two clouds, identical results"))


if __name__ == "__main__":
    main()
