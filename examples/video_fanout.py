"""The paper's video-processing case study: fan-out scaling on both clouds.

Splits a ~100 MB synthetic video into chunks, runs face detection with an
army of parallel workers, and sweeps the worker count — reproducing the
paper's central scaling contrast (Fig 12): AWS's per-request containers
scale nearly linearly, while Azure's shared instance pool plateaus behind
the scale controller.

Run:  python examples/video_fanout.py
"""

from repro.core import Testbed, build_video_deployments
from repro.core.report import render_table

WORKER_COUNTS = [1, 5, 10, 20, 40, 80]


def measure(name: str, n_workers: int) -> float:
    testbed = Testbed(seed=23)
    deployment = build_video_deployments(testbed, n_workers=n_workers)[name]
    deployment.deploy()
    run = testbed.run(deployment.invoke(n_workers=n_workers))
    return run.latency


def main():
    rows = []
    for workers in WORKER_COUNTS:
        aws = measure("AWS-Step", workers)
        azure = measure("Az-Dorch", workers)
        rows.append([workers, aws, azure, f"{aws / azure:.2f}x"])

    baseline_aws = measure("AWS-Lambda", 1)
    baseline_azure = measure("Az-Func", 1)

    print(render_table(
        ["workers", "AWS-Step (s)", "Az-Dorch (s)", "AWS/Azure"],
        rows, title="Video processing latency vs parallel workers"))
    print(f"\nsingle-function baselines: AWS-Lambda={baseline_aws:.0f}s, "
          f"Az-Func={baseline_azure:.0f}s")
    best_aws = min(row[1] for row in rows)
    best_azure = min(row[2] for row in rows)
    print(f"best AWS-Step: {best_aws:.0f}s "
          f"({1 - best_aws / baseline_aws:.0%} below the Lambda baseline)")
    print(f"best Az-Dorch: {best_azure:.0f}s "
          f"(gains stall once the scale controller becomes the bottleneck)")


if __name__ == "__main__":
    main()
