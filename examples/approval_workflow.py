"""Human-in-the-loop workflow: external events, timers and retries.

Expense reports above a threshold wait for a manager's approval — but
only for so long: a durable timer races the approval event, and unclaimed
reports escalate.  Flaky downstream bookings are retried with exponential
backoff.  All of it is the real Durable Functions programming model:
``wait_for_external_event``, ``create_timer``, ``task_any`` and
``call_activity_with_retry``.

Run:  python examples/approval_workflow.py
"""

from repro.azure import OrchestratorSpec, RetryOptions
from repro.azure.durable.tasks import ExternalEventTask
from repro.core import Testbed
from repro.core.report import render_table
from repro.platforms.base import FunctionSpec

APPROVAL_DEADLINE_S = 3600.0   # managers get an hour


def validate(ctx, report):
    yield from ctx.busy(0.3)
    if report["amount"] <= 0:
        raise ValueError("amounts must be positive")
    return dict(report, needs_approval=report["amount"] > 500)


_booking_attempts = {"count": 0}


def book(ctx, report):
    """A flaky downstream ledger: fails the first time, then recovers."""
    yield from ctx.busy(0.5)
    _booking_attempts["count"] += 1
    if _booking_attempts["count"] % 2 == 1:
        raise RuntimeError("ledger temporarily unavailable")
    return {"booked": report["id"], "amount": report["amount"]}


def expense_orchestrator(context):
    report = yield context.call_activity("validate", context.input)
    decision = "auto-approved"
    if report["needs_approval"]:
        approval = context.wait_for_external_event("ManagerDecision")
        deadline = context.create_timer(APPROVAL_DEADLINE_S)
        winner, value = yield context.task_any([approval, deadline])
        if isinstance(winner, ExternalEventTask):
            decision = value
            if value == "rejected":
                return {"id": report["id"], "status": "rejected"}
        else:
            return {"id": report["id"], "status": "escalated"}
    booking = yield context.call_activity_with_retry(
        "book", RetryOptions(first_retry_interval_s=10.0,
                             max_number_of_attempts=4), report)
    return {"id": report["id"], "status": "booked",
            "decision": decision, "booking": booking}


def main():
    testbed = Testbed(seed=31)
    for name, handler in [("validate", validate), ("book", book)]:
        testbed.app.register(FunctionSpec(
            name=name, handler=handler, memory_mb=1536, timeout_s=120.0,
            measured_memory_mb=256))
    testbed.durable.register_orchestrator(
        OrchestratorSpec("expense", expense_orchestrator))
    client = testbed.durable.client

    def scenario(env):
        outcomes = []

        # 1. Small expense: sails through (with one booking retry).
        result = yield from client.run(
            "expense", {"id": "E-1", "amount": 120})
        outcomes.append(result)

        # 2. Large expense, approved after 20 simulated minutes.
        instance_id = yield from client.start_new(
            "expense", {"id": "E-2", "amount": 2500})
        yield env.timeout(1200.0)
        yield from client.raise_event(instance_id, "ManagerDecision",
                                      "approved")
        outcomes.append((yield from client.wait_for_completion(instance_id)))

        # 3. Large expense, rejected.
        instance_id = yield from client.start_new(
            "expense", {"id": "E-3", "amount": 9000})
        yield env.timeout(60.0)
        yield from client.raise_event(instance_id, "ManagerDecision",
                                      "rejected")
        outcomes.append((yield from client.wait_for_completion(instance_id)))

        # 4. Large expense nobody looks at: the timer escalates it.
        result = yield from client.run(
            "expense", {"id": "E-4", "amount": 700})
        outcomes.append(result)
        return outcomes

    outcomes = testbed.run(scenario(testbed.env))
    print(render_table(
        ["report", "status", "decision"],
        [[outcome["id"], outcome["status"],
          outcome.get("decision", "-")] for outcome in outcomes],
        title="Expense approvals: events, timers, retries"))
    print(f"\nsimulated time: {testbed.now / 3600:.2f} hours; "
          f"booking attempts (incl. retries): {_booking_attempts['count']}")


if __name__ == "__main__":
    main()
