"""Observability tour: spans, Gantt charts and metric timeseries.

Runs one Azure durable video fan-out and then plays platform operator:
renders the workflow's Gantt chart (where did the time go?), a per-minute
p95 of worker scheduling delay (the scale controller's fingerprints), and
the queue-transaction rate over time (what the tenant is billed for).

Run:  python examples/observability.py
"""

from repro.core import Testbed, build_video_deployments
from repro.core.report import render_gantt, render_table
from repro.telemetry import SpanKind, series_from_spans

WORKERS = 24


def main():
    testbed = Testbed(seed=63)
    deployment = build_video_deployments(testbed, n_workers=WORKERS)[
        "Az-Dorch"]
    deployment.deploy()
    window_start = testbed.now
    result = testbed.run(deployment.invoke(n_workers=WORKERS))
    print(f"video fan-out with {WORKERS} workers finished in "
          f"{result.latency:.0f}s (simulated)\n")

    telemetry = testbed.azure.telemetry

    # 1. Gantt: the first few spans of the run.
    print(render_gantt(
        [span for span in telemetry.spans
         if span.kind in (SpanKind.COLD_START, SpanKind.EXECUTION,
                          SpanKind.REPLAY)],
        since=window_start, max_rows=18, width=60,
        title="Gantt (first 18 spans): instance births vs executions"))

    # 2. Worker scheduling delay, per-minute p95.
    series = series_from_spans(telemetry, SpanKind.SCHEDULING,
                               clock=lambda: testbed.now,
                               name="az-video-detect")
    points = series.percentile_per_period(period_s=60.0, q=95)
    print()
    print(render_table(
        ["minute", "p95 scheduling delay (s)"],
        [[f"{start / 60:.0f}", value] for start, value in points],
        title="Worker scheduling delay per minute (p95)"))

    # 3. Billable storage transactions over time.
    windows = testbed.azure.meter.window_counts(window=60.0)
    print()
    print(render_table(
        ["minute", "billable transactions"],
        [[f"{start / 60:.0f}", count] for start, count in windows[:8]],
        title="Storage transaction rate (first 8 minutes)"))
    total = len(testbed.azure.meter)
    print(f"\ntotal transactions so far: {total:,} "
          f"(≈ ${total * 4e-8:.6f} of stateful cost)")


if __name__ == "__main__":
    main()
